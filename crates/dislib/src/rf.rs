//! Random Forest classification (paper §III-C3, Figs. 7–8).
//!
//! dislib's RF "is the only algorithm in dislib in which the number of
//! blocks and their size does not have a direct impact on the
//! computational time and number of tasks created during its training;
//! its parallelism is based on the number of estimators and the
//! parameter `distr_depth`". This module reproduces that structure:
//!
//! * `distr_depth == 0`: one `rf_build_tree` task per estimator.
//! * `distr_depth > 0`: per estimator, one `rf_top` task builds the tree
//!   down to `distr_depth` and emits `2^distr_depth` sample partitions;
//!   one `rf_subtree` task per partition grows the remainder; one
//!   `rf_join` task grafts the subtrees back. This is what lets a single
//!   tree span multiple workers — and also what produces the load
//!   imbalance the paper blames for RF's poor scalability ("the division
//!   of the data on the different decision trees can cause some tasks
//!   handle considerably more data than other").

use linalg::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use taskrt::{Handle, Payload, Runtime};

/// Sentinel: node is a leaf.
const LEAF: u32 = u32::MAX;
/// Sentinel: node is an unexpanded frontier slot (only inside the
/// partial trees produced by `rf_top`).
const FRONTIER: u32 = u32::MAX - 1;

/// One node of a CART decision tree (arena representation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Node {
    /// Split feature index; for `FRONTIER` nodes this is the partition
    /// slot index instead.
    pub feature: u32,
    /// Split threshold (`x[feature] <= threshold` goes left).
    pub threshold: f64,
    /// Arena index of the left child, or `LEAF` / `FRONTIER`.
    pub left: u32,
    /// Arena index of the right child (valid only for split nodes).
    pub right: u32,
    /// Class probability distribution at this node `[P(Normal), P(AF)]`.
    pub probs: [f64; 2],
}

/// A decision tree stored as a node arena; index 0 is the root.
#[derive(Debug, Clone, Default)]
pub struct Tree {
    /// Arena of nodes.
    pub nodes: Vec<Node>,
}

impl Payload for Tree {
    fn approx_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>() + std::mem::size_of::<Self>()
    }
}

impl Tree {
    /// Probability distribution predicted for one sample row.
    pub fn predict_probs(&self, row: &[f64]) -> [f64; 2] {
        let mut i = 0usize;
        loop {
            let n = &self.nodes[i];
            if n.left == LEAF {
                return n.probs;
            }
            debug_assert_ne!(n.left, FRONTIER, "predicting on a partial tree");
            i = if row[n.feature as usize] <= n.threshold {
                n.left as usize
            } else {
                n.right as usize
            };
        }
    }

    /// Hard label for one sample.
    pub fn predict_one(&self, row: &[f64]) -> u8 {
        let p = self.predict_probs(row);
        u8::from(p[1] > p[0])
    }

    /// Tree depth (longest root-to-leaf path; 0 for a lone leaf).
    pub fn depth(&self) -> usize {
        fn walk(t: &Tree, i: usize) -> usize {
            let n = &t.nodes[i];
            if n.left == LEAF || n.left == FRONTIER {
                0
            } else {
                1 + walk(t, n.left as usize).max(walk(t, n.right as usize))
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(self, 0)
        }
    }

    fn frontier_slots(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.left == FRONTIER)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Output of an `rf_top` task: a partial tree whose frontier leaves each
/// own a sample partition.
#[derive(Debug, Clone)]
pub struct TopSplit {
    /// Partial tree with `FRONTIER` leaves.
    pub tree: Tree,
    /// `partitions[slot]` = bootstrap sample indices reaching that slot.
    pub partitions: Vec<Vec<u32>>,
}

impl Payload for TopSplit {
    fn approx_bytes(&self) -> usize {
        self.tree.approx_bytes()
            + self
                .partitions
                .iter()
                .map(|p| p.len() * 4 + 24)
                .sum::<usize>()
    }
}

/// Random-forest hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct RfParams {
    /// Number of trees (paper: 40).
    pub n_estimators: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Depth down to which tree construction is split into separate
    /// tasks (dislib's `distr_depth`).
    pub distr_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// `sqrt` feature subsampling is always on (standard RF); this seed
    /// drives bootstrap + feature sampling.
    pub seed: u64,
    /// Cores per task in the simulator.
    pub task_cores: u32,
}

impl Default for RfParams {
    fn default() -> Self {
        Self {
            n_estimators: 40,
            max_depth: 12,
            distr_depth: 0,
            min_samples_split: 4,
            seed: 0,
            task_cores: 1,
        }
    }
}

/// Gini impurity of a label multiset given counts.
fn gini(counts: &[usize; 2]) -> f64 {
    let n = (counts[0] + counts[1]) as f64;
    if n == 0.0 {
        return 0.0;
    }
    let p0 = counts[0] as f64 / n;
    let p1 = counts[1] as f64 / n;
    1.0 - p0 * p0 - p1 * p1
}

fn class_counts(y: &[u8], idx: &[u32]) -> [usize; 2] {
    let mut c = [0usize; 2];
    for &i in idx {
        c[y[i as usize] as usize] += 1;
    }
    c
}

fn leaf_probs(counts: &[usize; 2]) -> [f64; 2] {
    let n = (counts[0] + counts[1]).max(1) as f64;
    [counts[0] as f64 / n, counts[1] as f64 / n]
}

/// Best (feature, threshold) among a random subset of `sqrt(n_features)`
/// features, by weighted Gini; `None` if no split reduces impurity.
///
/// This is the seed's splitter: it re-gathers and re-sorts the node's
/// `(value, label)` pairs for every tried feature of every node. Kept
/// as the reference path for the perf harness A/B and the
/// identical-tree parity tests; [`best_split_fast`] is the production
/// path.
fn best_split(
    x: &Matrix,
    y: &[u8],
    idx: &[u32],
    rng: &mut StdRng,
) -> Option<(u32, f64, Vec<u32>, Vec<u32>)> {
    let n_feat = x.cols();
    let n_try = (n_feat as f64).sqrt().ceil() as usize;
    let parent_counts = class_counts(y, idx);
    let parent_gini = gini(&parent_counts);
    if parent_gini == 0.0 {
        return None;
    }

    let mut best: Option<(f64, u32, f64)> = None; // (score, feature, threshold)
    for _ in 0..n_try {
        let f = rng.random_range(0..n_feat);
        // Sort sample values along this feature.
        let mut vals: Vec<(f64, u8)> = idx
            .iter()
            .map(|&i| (x.get(i as usize, f), y[i as usize]))
            .collect();
        vals.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Sweep thresholds between distinct consecutive values.
        let total = class_counts(y, idx);
        let mut left = [0usize; 2];
        for w in 0..vals.len() - 1 {
            left[vals[w].1 as usize] += 1;
            if vals[w].0 == vals[w + 1].0 {
                continue;
            }
            let right = [total[0] - left[0], total[1] - left[1]];
            let nl = (left[0] + left[1]) as f64;
            let nr = (right[0] + right[1]) as f64;
            let score = (nl * gini(&left) + nr * gini(&right)) / (nl + nr);
            let thr = 0.5 * (vals[w].0 + vals[w + 1].0);
            if best.is_none_or(|(s, _, _)| score < s) {
                best = Some((score, f as u32, thr));
            }
        }
    }

    let (score, feature, threshold) = best?;
    if score >= parent_gini - 1e-12 {
        return None;
    }
    let (mut li, mut ri) = (Vec::new(), Vec::new());
    for &i in idx {
        if x.get(i as usize, feature as usize) <= threshold {
            li.push(i);
        } else {
            ri.push(i);
        }
    }
    if li.is_empty() || ri.is_empty() {
        return None;
    }
    Some((feature, threshold, li, ri))
}

/// Per-tree scratch for the pre-sorted split finder: the bootstrap
/// rows, a lazily-built per-feature stable argsort of the bootstrap
/// *positions*, and an epoch-stamped membership mark that filters a
/// feature's tree-wide order down to the current node without sorting.
struct SplitScratch {
    /// Bootstrap sample rows; all position indices index into this.
    rows: Vec<u32>,
    /// `order[f]`: positions `0..rows.len()` stably sorted by
    /// `x[rows[pos]][f]`, paired with the matching value sequence
    /// (`sorted_vals[i]` = value of `order[i]`, so the filter sweep
    /// reads both sequentially instead of re-gathering from the
    /// matrix); built on first use of feature `f` and reused by every
    /// later node of the tree that samples `f`.
    order: Vec<Option<(Vec<u32>, Vec<f64>)>>,
    /// `labels[pos]` = `y[rows[pos]]`, cached once per tree.
    labels: Vec<u8>,
    /// `mark[pos] == epoch` iff `pos` belongs to the node being split.
    mark: Vec<u32>,
    epoch: u32,
    /// Gather buffer for the local-sort fallback on small nodes.
    vals: Vec<(f64, u8)>,
}

impl SplitScratch {
    fn new(rows: Vec<u32>, y: &[u8], n_feat: usize) -> Self {
        let n = rows.len();
        let labels = rows.iter().map(|&r| y[r as usize]).collect();
        Self {
            rows,
            order: vec![None; n_feat],
            labels,
            mark: vec![0; n],
            epoch: 0,
            vals: Vec::new(),
        }
    }

    /// Builds (once) the stable value-argsort of feature `f`.
    fn ensure_order(&mut self, x: &Matrix, f: usize) {
        if self.order[f].is_none() {
            let rows = &self.rows;
            let vals: Vec<f64> = rows.iter().map(|&r| x.get(r as usize, f)).collect();
            let mut ord: Vec<u32> = (0..rows.len() as u32).collect();
            // Stable: tied values keep bootstrap-position order. The
            // sweep only aggregates label counts across a tie group, so
            // within-tie order never affects the chosen split.
            ord.sort_by(|&a, &b| vals[a as usize].total_cmp(&vals[b as usize]));
            let sorted_vals = ord.iter().map(|&p| vals[p as usize]).collect();
            self.order[f] = Some((ord, sorted_vals));
        }
    }
}

/// Streaming threshold sweep over `(value, label)` pairs arriving in
/// ascending value order: evaluates a candidate threshold at every
/// distinct-value boundary, exactly as the seed splitter's indexed loop
/// does (same counts, same `0.5 * (prev + next)` thresholds, same
/// strict-improvement tie-breaking), updating `best` in place.
fn sweep_sorted(
    iter: impl Iterator<Item = (f64, u8)>,
    total: &[usize; 2],
    f: u32,
    best: &mut Option<(f64, u32, f64)>,
) {
    let mut left = [0usize; 2];
    let mut prev: Option<f64> = None;
    for (v, lab) in iter {
        if let Some(pv) = prev {
            if v != pv {
                let right = [total[0] - left[0], total[1] - left[1]];
                let nl = (left[0] + left[1]) as f64;
                let nr = (right[0] + right[1]) as f64;
                let score = (nl * gini(&left) + nr * gini(&right)) / (nl + nr);
                let thr = 0.5 * (pv + v);
                if best.is_none_or(|(s, _, _)| score < s) {
                    *best = Some((score, f, thr));
                }
            }
        }
        left[lab as usize] += 1;
        prev = Some(v);
    }
}

fn class_counts_pos(y: &[u8], rows: &[u32], pos: &[u32]) -> [usize; 2] {
    let mut c = [0usize; 2];
    for &p in pos {
        c[y[rows[p as usize] as usize] as usize] += 1;
    }
    c
}

/// The fast splitter: same split decisions as [`best_split`] (identical
/// scores, thresholds, and tie-breaks, hence identical trees), but
/// instead of re-sorting the node's samples per feature it filters the
/// tree-wide pre-sorted order through the node-membership mark — O(n)
/// per feature with no sort. Small nodes (where a full-bootstrap scan
/// would cost more than sorting the handful of samples) fall back to
/// the gather-and-sort sweep over a reused buffer. Operates on
/// *positions* into `sc.rows`; returns position partitions.
fn best_split_fast(
    x: &Matrix,
    y: &[u8],
    sc: &mut SplitScratch,
    pos: &[u32],
    rng: &mut StdRng,
) -> Option<(u32, f64, Vec<u32>, Vec<u32>)> {
    let n_feat = x.cols();
    let n_try = (n_feat as f64).sqrt().ceil() as usize;
    let parent_counts = class_counts_pos(y, &sc.rows, pos);
    let parent_gini = gini(&parent_counts);
    if parent_gini == 0.0 {
        return None;
    }

    // Filtering scans all `n` bootstrap positions; local sorting costs
    // ~`m log m` comparator calls for the node's `m` samples. A filter
    // step (sequential u32 compare) is several times cheaper than a
    // sort comparison, hence the factor on the `m log m` side. Filter
    // only while the node is a large enough fraction of the bootstrap
    // to win.
    let n = sc.rows.len();
    let m = pos.len();
    let use_filter = 4 * m * (usize::BITS - m.leading_zeros()) as usize >= n;
    if use_filter {
        if sc.epoch == u32::MAX {
            sc.mark.fill(0);
            sc.epoch = 0;
        }
        sc.epoch += 1;
        for &p in pos {
            sc.mark[p as usize] = sc.epoch;
        }
    }

    let mut best: Option<(f64, u32, f64)> = None;
    for _ in 0..n_try {
        let f = rng.random_range(0..n_feat);
        if use_filter {
            sc.ensure_order(x, f);
            let (ord, sv) = sc.order[f].as_ref().expect("order just built");
            let (labels, mark, epoch) = (&sc.labels, &sc.mark, sc.epoch);
            let node_sorted = ord
                .iter()
                .zip(sv)
                .filter(|(&p, _)| mark[p as usize] == epoch)
                .map(|(&p, &v)| (v, labels[p as usize]));
            sweep_sorted(node_sorted, &parent_counts, f as u32, &mut best);
        } else {
            let (vals, rows) = (&mut sc.vals, &sc.rows);
            vals.clear();
            vals.extend(pos.iter().map(|&p| {
                let r = rows[p as usize] as usize;
                (x.get(r, f), y[r])
            }));
            vals.sort_by(|a, b| a.0.total_cmp(&b.0));
            sweep_sorted(vals.iter().copied(), &parent_counts, f as u32, &mut best);
        }
    }

    let (score, feature, threshold) = best?;
    if score >= parent_gini - 1e-12 {
        return None;
    }
    let (mut li, mut ri) = (Vec::new(), Vec::new());
    for &p in pos {
        if x.get(sc.rows[p as usize] as usize, feature as usize) <= threshold {
            li.push(p);
        } else {
            ri.push(p);
        }
    }
    if li.is_empty() || ri.is_empty() {
        return None;
    }
    Some((feature, threshold, li, ri))
}

/// Recursively grows a subtree into `arena`, returning its root index.
#[allow(clippy::too_many_arguments)]
fn grow(
    arena: &mut Vec<Node>,
    x: &Matrix,
    y: &[u8],
    idx: &[u32],
    depth: usize,
    params: &RfParams,
    rng: &mut StdRng,
    stop_depth: Option<usize>,
) -> u32 {
    let counts = class_counts(y, idx);
    let probs = leaf_probs(&counts);
    let me = arena.len() as u32;
    arena.push(Node {
        feature: 0,
        threshold: 0.0,
        left: LEAF,
        right: 0,
        probs,
    });

    if let Some(sd) = stop_depth {
        if depth == sd {
            // Frontier slot: partition index assigned by the caller.
            arena[me as usize].left = FRONTIER;
            return me;
        }
    }
    if depth >= params.max_depth || idx.len() < params.min_samples_split {
        return me;
    }
    let Some((feature, threshold, li, ri)) = best_split(x, y, idx, rng) else {
        return me;
    };
    let l = grow(arena, x, y, &li, depth + 1, params, rng, stop_depth);
    let r = grow(arena, x, y, &ri, depth + 1, params, rng, stop_depth);
    let n = &mut arena[me as usize];
    n.feature = feature;
    n.threshold = threshold;
    n.left = l;
    n.right = r;
    me
}

/// [`grow`] over bootstrap *positions* with the pre-sorted splitter;
/// identical recursion structure, identical RNG consumption, identical
/// resulting arena.
#[allow(clippy::too_many_arguments)]
fn grow_fast(
    arena: &mut Vec<Node>,
    x: &Matrix,
    y: &[u8],
    sc: &mut SplitScratch,
    pos: &[u32],
    depth: usize,
    params: &RfParams,
    rng: &mut StdRng,
    stop_depth: Option<usize>,
) -> u32 {
    let counts = class_counts_pos(y, &sc.rows, pos);
    let probs = leaf_probs(&counts);
    let me = arena.len() as u32;
    arena.push(Node {
        feature: 0,
        threshold: 0.0,
        left: LEAF,
        right: 0,
        probs,
    });

    if let Some(sd) = stop_depth {
        if depth == sd {
            arena[me as usize].left = FRONTIER;
            return me;
        }
    }
    if depth >= params.max_depth || pos.len() < params.min_samples_split {
        return me;
    }
    let Some((feature, threshold, li, ri)) = best_split_fast(x, y, sc, pos, rng) else {
        return me;
    };
    let l = grow_fast(arena, x, y, sc, &li, depth + 1, params, rng, stop_depth);
    let r = grow_fast(arena, x, y, sc, &ri, depth + 1, params, rng, stop_depth);
    let n = &mut arena[me as usize];
    n.feature = feature;
    n.threshold = threshold;
    n.left = l;
    n.right = r;
    me
}

/// Draws a bootstrap sample of `n` indices.
fn bootstrap(n: usize, rng: &mut StdRng) -> Vec<u32> {
    (0..n).map(|_| rng.random_range(0..n) as u32).collect()
}

/// Builds one full tree locally (the `distr_depth == 0` path), using
/// the pre-sorted split finder.
pub fn build_tree(x: &Matrix, y: &[u8], params: &RfParams, est_seed: u64) -> Tree {
    let mut rng = StdRng::seed_from_u64(params.seed.wrapping_add(est_seed));
    let rows = bootstrap(x.rows(), &mut rng);
    let pos: Vec<u32> = (0..rows.len() as u32).collect();
    let mut sc = SplitScratch::new(rows, y, x.cols());
    let mut arena = Vec::new();
    grow_fast(&mut arena, x, y, &mut sc, &pos, 0, params, &mut rng, None);
    Tree { nodes: arena }
}

/// [`build_tree`] via the seed's per-node re-sorting splitter. Kept for
/// the perf harness A/B and the identical-tree parity tests; produces
/// bit-identical trees to [`build_tree`].
pub fn build_tree_legacy(x: &Matrix, y: &[u8], params: &RfParams, est_seed: u64) -> Tree {
    let mut rng = StdRng::seed_from_u64(params.seed.wrapping_add(est_seed));
    let idx = bootstrap(x.rows(), &mut rng);
    let mut arena = Vec::new();
    grow(&mut arena, x, y, &idx, 0, params, &mut rng, None);
    Tree { nodes: arena }
}

/// Builds the top of a tree down to `distr_depth` and collects the
/// sample partition for each frontier slot.
pub fn build_top(x: &Matrix, y: &[u8], params: &RfParams, est_seed: u64) -> TopSplit {
    let mut rng = StdRng::seed_from_u64(params.seed.wrapping_add(est_seed));
    let rows = bootstrap(x.rows(), &mut rng);
    let pos: Vec<u32> = (0..rows.len() as u32).collect();
    let mut sc = SplitScratch::new(rows, y, x.cols());
    let mut arena = Vec::new();
    grow_fast(
        &mut arena,
        x,
        y,
        &mut sc,
        &pos,
        0,
        params,
        &mut rng,
        Some(params.distr_depth),
    );
    let idx = sc.rows;
    let mut tree = Tree { nodes: arena };

    // Route every bootstrap sample to its frontier slot.
    let slots = tree.frontier_slots();
    let slot_of = |row: &[f64]| -> usize {
        let mut i = 0usize;
        loop {
            let n = &tree.nodes[i];
            if n.left == LEAF || n.left == FRONTIER {
                return i;
            }
            i = if row[n.feature as usize] <= n.threshold {
                n.left as usize
            } else {
                n.right as usize
            };
        }
    };
    let mut partitions: Vec<Vec<u32>> = vec![Vec::new(); slots.len()];
    for &i in &idx {
        let node = slot_of(x.row(i as usize));
        if let Some(slot) = slots.iter().position(|&s| s == node) {
            partitions[slot].push(i);
        }
        // Samples ending in real leaves above the frontier need no
        // further growing.
    }
    // Tag each frontier node with its slot index.
    for (slot, &node) in slots.iter().enumerate() {
        tree.nodes[node].feature = slot as u32;
    }
    TopSplit { tree, partitions }
}

/// Grows the subtree for frontier `slot` of a [`TopSplit`].
pub fn build_subtree(
    x: &Matrix,
    y: &[u8],
    top: &TopSplit,
    slot: usize,
    params: &RfParams,
    est_seed: u64,
) -> Tree {
    let mut rng = StdRng::seed_from_u64(
        params
            .seed
            .wrapping_add(est_seed)
            .wrapping_add(977 * slot as u64),
    );
    let idx = &top.partitions[slot];
    let mut arena = Vec::new();
    if idx.is_empty() {
        // Keep the parent's distribution.
        let slots = top.tree.frontier_slots();
        let probs = top.tree.nodes[slots[slot]].probs;
        arena.push(Node {
            feature: 0,
            threshold: 0.0,
            left: LEAF,
            right: 0,
            probs,
        });
    } else {
        let pos: Vec<u32> = (0..idx.len() as u32).collect();
        let mut sc = SplitScratch::new(idx.clone(), y, x.cols());
        grow_fast(
            &mut arena,
            x,
            y,
            &mut sc,
            &pos,
            params.distr_depth,
            params,
            &mut rng,
            None,
        );
    }
    Tree { nodes: arena }
}

/// Grafts the subtrees into the partial tree, producing a complete tree.
pub fn join_tree(top: &TopSplit, subtrees: &[&Tree]) -> Tree {
    let mut tree = top.tree.clone();
    let slots = tree.frontier_slots();
    assert_eq!(slots.len(), subtrees.len(), "subtree count mismatch");
    for (&node, sub) in slots.iter().zip(subtrees) {
        let offset = tree.nodes.len() as u32;
        // Append subtree arena, fixing internal child indices.
        for n in &sub.nodes {
            let mut n = *n;
            if n.left != LEAF && n.left != FRONTIER {
                n.left += offset;
                n.right += offset;
            }
            tree.nodes.push(n);
        }
        // Replace the frontier node with the subtree root (copy root
        // into place so parent links stay valid).
        let mut root = tree.nodes[offset as usize];
        if root.left != LEAF && root.left == offset {
            // Root pointing at itself cannot happen; defensive.
            root.left = LEAF;
        }
        tree.nodes[node] = root;
    }
    tree
}

/// A fitted distributed random forest.
pub struct RandomForest {
    /// Trained trees.
    pub trees: Vec<Handle<Tree>>,
    params: RfParams,
}

impl RandomForest {
    /// Fits the forest on an (undistributed, as in dislib) dataset
    /// handle. Task structure depends on `distr_depth` (see module
    /// docs).
    pub fn fit(rt: &Runtime, x: Handle<Matrix>, y: Handle<Vec<u8>>, params: RfParams) -> Self {
        let trees = (0..params.n_estimators)
            .map(|est| {
                let est_seed = est as u64;
                if params.distr_depth == 0 {
                    rt.task("rf_build_tree").cores(params.task_cores).run2(
                        x,
                        y,
                        move |x: &Matrix, y: &Vec<u8>| build_tree(x, y, &params, est_seed),
                    )
                } else {
                    let top = rt.task("rf_top").cores(params.task_cores).run2(
                        x,
                        y,
                        move |x: &Matrix, y: &Vec<u8>| build_top(x, y, &params, est_seed),
                    );
                    let n_slots = 1usize << params.distr_depth;
                    let subtrees: Vec<Handle<Tree>> = (0..n_slots)
                        .map(|slot| {
                            rt.task("rf_subtree").cores(params.task_cores).run3(
                                x,
                                y,
                                top,
                                move |x: &Matrix, y: &Vec<u8>, top: &TopSplit| {
                                    if slot < top.partitions.len() {
                                        build_subtree(x, y, top, slot, &params, est_seed)
                                    } else {
                                        // The top stopped early (pure
                                        // node); nothing to grow.
                                        Tree {
                                            nodes: vec![Node {
                                                feature: 0,
                                                threshold: 0.0,
                                                left: LEAF,
                                                right: 0,
                                                probs: [0.5, 0.5],
                                            }],
                                        }
                                    }
                                },
                            )
                        })
                        .collect();
                    rt.task("rf_join").cores(params.task_cores).run_with_many(
                        top,
                        &subtrees,
                        |top: &TopSplit, subs: &[&Tree]| {
                            join_tree(top, &subs[..top.partitions.len()])
                        },
                    )
                }
            })
            .collect();
        RandomForest { trees, params }
    }

    /// Averaged class probabilities over all trees for a query block:
    /// one `rf_predict` task per tree plus a reduction (the paper's
    /// Fig. 7: "the predictions of the composing estimators are
    /// averaged").
    pub fn predict_probs(&self, rt: &Runtime, x: Handle<Matrix>) -> Handle<Matrix> {
        let partials: Vec<Handle<Matrix>> = self
            .trees
            .iter()
            .map(|&t| {
                rt.task("rf_predict").cores(self.params.task_cores).run2(
                    t,
                    x,
                    |tree: &Tree, q: &Matrix| {
                        Matrix::from_fn(q.rows(), 2, |r, c| tree.predict_probs(q.row(r))[c])
                    },
                )
            })
            .collect();
        let summed = dsarray::tree_reduce(rt, "rf_reduce", &partials, |a, b| {
            let mut s = a.clone();
            s.add_assign(b);
            s
        });
        let n = self.trees.len() as f64;
        rt.task("rf_average").run1(summed, move |m: &Matrix| {
            let mut out = m.clone();
            out.scale(1.0 / n);
            out
        })
    }

    /// Hard labels for a query block.
    pub fn predict(&self, rt: &Runtime, x: Handle<Matrix>) -> Handle<Vec<u8>> {
        let probs = self.predict_probs(rt, x);
        rt.task("rf_vote").run1(probs, |p: &Matrix| {
            (0..p.rows())
                .map(|r| u8::from(p.get(r, 1) > p.get(r, 0)))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::testutil::{blobs, blobs_nd};

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&[10, 0]), 0.0);
        assert!((gini(&[5, 5]) - 0.5).abs() < 1e-12);
        assert_eq!(gini(&[0, 0]), 0.0);
    }

    #[test]
    fn single_tree_fits_blobs() {
        let (x, y) = blobs(50, 2.0, 31);
        let params = RfParams {
            n_estimators: 1,
            ..Default::default()
        };
        let tree = build_tree(&x, &y, &params, 0);
        let pred: Vec<u8> = (0..x.rows()).map(|r| tree.predict_one(x.row(r))).collect();
        assert!(accuracy(&y, &pred) > 0.9);
        assert!(tree.depth() >= 1);
    }

    #[test]
    fn forest_beats_chance_on_noisy_data() {
        let rt = Runtime::new();
        let (x, y) = blobs_nd(60, 6, 1.0, 32);
        let xh = rt.put(x.clone());
        let yh = rt.put(y.clone());
        let params = RfParams {
            n_estimators: 15,
            ..Default::default()
        };
        let forest = RandomForest::fit(&rt, xh, yh, params);
        let pred = forest.predict(&rt, xh);
        let acc = accuracy(&y, &rt.wait(pred));
        assert!(acc > 0.85, "acc={acc}");
    }

    #[test]
    fn task_count_independent_of_blocks_depends_on_estimators() {
        let rt = Runtime::new();
        let (x, y) = blobs(20, 2.0, 33);
        let xh = rt.put(x);
        let yh = rt.put(y);
        let params = RfParams {
            n_estimators: 7,
            ..Default::default()
        };
        let _f = RandomForest::fit(&rt, xh, yh, params);
        let hist = rt.trace().task_histogram();
        assert_eq!(hist["rf_build_tree"], 7);
    }

    #[test]
    fn distr_depth_task_structure() {
        let rt = Runtime::new();
        let (x, y) = blobs(40, 2.0, 34);
        let xh = rt.put(x);
        let yh = rt.put(y);
        let params = RfParams {
            n_estimators: 3,
            distr_depth: 2,
            ..Default::default()
        };
        let _f = RandomForest::fit(&rt, xh, yh, params);
        let hist = rt.trace().task_histogram();
        assert_eq!(hist["rf_top"], 3);
        assert_eq!(hist["rf_subtree"], 3 * 4); // 2^2 per estimator
        assert_eq!(hist["rf_join"], 3);
    }

    #[test]
    fn distributed_tree_matches_quality_of_local() {
        let rt = Runtime::new();
        let (x, y) = blobs(60, 1.5, 35);
        let xh = rt.put(x.clone());
        let yh = rt.put(y.clone());
        let params = RfParams {
            n_estimators: 9,
            distr_depth: 2,
            ..Default::default()
        };
        let forest = RandomForest::fit(&rt, xh, yh, params);
        let pred = forest.predict(&rt, xh);
        let acc = accuracy(&y, &rt.wait(pred));
        assert!(acc > 0.9, "acc={acc}");
    }

    #[test]
    fn join_produces_complete_tree() {
        let (x, y) = blobs(40, 2.0, 36);
        let params = RfParams {
            distr_depth: 1,
            ..Default::default()
        };
        let top = build_top(&x, &y, &params, 0);
        let n_slots = top.partitions.len();
        assert!(n_slots <= 2);
        let subs: Vec<Tree> = (0..n_slots)
            .map(|s| build_subtree(&x, &y, &top, s, &params, 0))
            .collect();
        let refs: Vec<&Tree> = subs.iter().collect();
        let tree = join_tree(&top, &refs);
        // No frontier slots remain.
        assert!(tree.frontier_slots().is_empty());
        // And it predicts sanely.
        let pred: Vec<u8> = (0..x.rows()).map(|r| tree.predict_one(x.row(r))).collect();
        assert!(accuracy(&y, &pred) > 0.8);
    }

    #[test]
    fn probs_are_distributions() {
        let rt = Runtime::new();
        let (x, y) = blobs(30, 2.0, 37);
        let xh = rt.put(x.clone());
        let yh = rt.put(y);
        let params = RfParams {
            n_estimators: 5,
            ..Default::default()
        };
        let forest = RandomForest::fit(&rt, xh, yh, params);
        let probs = rt.wait(forest.predict_probs(&rt, xh));
        for r in 0..probs.rows() {
            let s = probs.get(r, 0) + probs.get(r, 1);
            assert!((s - 1.0).abs() < 1e-9, "row {r} sums to {s}");
            assert!(probs.get(r, 0) >= 0.0 && probs.get(r, 1) >= 0.0);
        }
    }

    #[test]
    fn bootstrap_determinism() {
        let (x, y) = blobs(20, 2.0, 38);
        let params = RfParams::default();
        let a = build_tree(&x, &y, &params, 3);
        let b = build_tree(&x, &y, &params, 3);
        assert_eq!(a.nodes, b.nodes);
        let c = build_tree(&x, &y, &params, 4);
        assert_ne!(a.nodes, c.nodes);
    }

    #[test]
    fn fast_split_finder_matches_legacy_trees() {
        // Overlapping clusters force impure nodes at many depths, and
        // the high dimension exercises the lazy per-feature orders.
        for (n, d, spread, seed) in [
            (60usize, 2usize, 1.2, 40u64),
            (150, 8, 0.8, 41),
            (80, 5, 0.5, 42),
        ] {
            let (x, y) = blobs_nd(n, d, spread, seed);
            for est in 0..4u64 {
                let params = RfParams {
                    max_depth: 10,
                    min_samples_split: 2,
                    seed,
                    ..Default::default()
                };
                let fast = build_tree(&x, &y, &params, est);
                let legacy = build_tree_legacy(&x, &y, &params, est);
                assert_eq!(fast.nodes, legacy.nodes, "n={n} d={d} est={est}");
            }
        }
    }

    #[test]
    fn fast_split_finder_matches_legacy_with_duplicate_values() {
        // Quantized features create heavy value ties; the tie-group
        // aggregation of the streaming sweep must match the legacy
        // skip-equal-adjacent loop exactly.
        let (mut x, y) = blobs_nd(100, 4, 1.0, 43);
        for v in x.as_mut_slice() {
            *v = (*v * 4.0).round() / 4.0;
        }
        let params = RfParams {
            max_depth: 12,
            min_samples_split: 2,
            seed: 7,
            ..Default::default()
        };
        for est in 0..4u64 {
            let fast = build_tree(&x, &y, &params, est);
            let legacy = build_tree_legacy(&x, &y, &params, est);
            assert_eq!(fast.nodes, legacy.nodes, "est={est}");
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

        #[test]
        fn prop_fast_trees_identical_to_legacy(
            n in 20usize..120,
            d in 1usize..7,
            seed in 0u64..1000,
            est in 0u64..8,
        ) {
            let spread = 0.4 + (seed % 5) as f64 * 0.4;
            let (mut x, y) = blobs_nd(n, d, spread, seed);
            if seed % 2 == 0 {
                for v in x.as_mut_slice() {
                    *v = (*v * 8.0).round() / 8.0;
                }
            }
            let params = RfParams {
                max_depth: 12,
                min_samples_split: 2,
                seed,
                ..Default::default()
            };
            let fast = build_tree(&x, &y, &params, est);
            let legacy = build_tree_legacy(&x, &y, &params, est);
            proptest::prop_assert_eq!(fast.nodes, legacy.nodes);
        }
    }
}
