//! # dislib — distributed machine-learning estimators over ds-arrays
//!
//! Rust reproduction of the dislib library the paper builds on (§II-B):
//! scikit-learn-style estimators (`fit` / `predict` / `score`) whose
//! internals are [`taskrt`] task graphs over blocked [`dsarray`] data,
//! so "communications, data transfers, and parallelism are automatically
//! handled behind the scenes by the runtime".
//!
//! Estimators (one per paper section):
//!
//! | paper | module | parallel structure |
//! |---|---|---|
//! | §III-C1 CSVM | [`csvm`] | task per row block + pairwise cascade |
//! | §III-C2 KNN | [`knn`] | task per row block, merge + vote |
//! | §III-C3 RF | [`rf`] | task per estimator (+ `distr_depth`) |
//! | §III-B4 PCA | [`pca`] | two map-reduce phases + single `eigh` task |
//! | §IV-B scaler | [`scaler`] | per-block stats + reduction |
//!
//! Support modules: [`svm`] (the in-task SMO solver), [`metrics`]
//! (Table I confusion matrices), [`model_selection`] (5-fold CV).
//! [`pca_dist`] re-expresses the PCA pipeline as a `taskrt::dist` plan
//! of registered kinds, runnable across worker processes.

pub mod csvm;
pub mod knn;
pub mod metrics;
pub mod model_selection;
pub mod pca;
pub mod pca_dist;
pub mod rf;
pub mod scaler;
pub mod svm;

#[cfg(test)]
pub(crate) mod testutil;

pub use csvm::{CascadeSvm, CascadeSvmParams};
pub use knn::{KnnClassifier, KnnParams, Weights};
pub use metrics::{accuracy, roc_auc, roc_curve, threshold_for_recall, ConfusionMatrix, RocPoint};
pub use model_selection::{cross_validate, grid_search, GridSearchResult, KFold};
pub use pca::{Components, Pca};
pub use pca_dist::{pca_plan, register_pca_kinds, PcaPlanOutputs};
pub use rf::{RandomForest, RfParams, Tree};
pub use scaler::StandardScaler;
pub use svm::{fit_svc, SvcModel, SvcParams};
