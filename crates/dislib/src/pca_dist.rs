//! PCA as a distributed [`Plan`] over registered task kinds.
//!
//! The same covariance-method pipeline as [`crate::pca`] (paper
//! §III-B4), but expressed for the multi-process executor
//! (`taskrt::dist`): row blocks are seeded as wire payloads, every task
//! is a named kind (`dpca_*`), and the map-reduce phases become
//! explicit tree reductions in the plan. The structure per phase
//! mirrors dislib exactly — per-block column sums reduced to a mean,
//! per-block centering, per-block Gram matrices reduced and scaled to
//! the covariance, one `dpca_eigh` task, per-block projection.
//!
//! Because a [`Plan`] fixes the reduction tree, the distributed run is
//! **bit-identical** to [`Plan::run_inline`] — floating-point op order
//! never depends on worker timing. That identity (not a tolerance) is
//! what `bench --bin dist --check` and CI assert.
//!
//! The map-phase kinds (`dpca_colsum`, `dpca_gram`) carry
//! `OnFailure::Retry` so a flaky worker body exercises the same retry
//! policies the threaded runtime uses; reductions and `dpca_eigh` stay
//! fail-fast, with worker *death* handled by the driver's lineage
//! re-execution instead.

use linalg::{eigh, Matrix};
use taskrt::dist::{KindRegistry, Plan, WireValue};
use taskrt::{OnFailure, RetryPolicy};

/// Ids of the data a PCA plan marks as driver outputs.
#[derive(Debug, Clone, Copy)]
pub struct PcaPlanOutputs {
    /// `List[Matrix components (d x k), VecF64 explained_variance]`.
    pub eig: u64,
    /// Projection `n x k` of the (centered) input onto the components.
    pub projection: u64,
}

/// Registers the `dpca_*` kinds. Driver and workers must call this on
/// the same registry-building path (process-mode workers re-execute the
/// host binary, so that holds by construction).
pub fn register_pca_kinds(reg: &mut KindRegistry) {
    reg.register_with(
        "dpca_colsum",
        OnFailure::Retry,
        RetryPolicy::new(3),
        |ins| {
            let m = ins[0].as_matrix();
            let mut v = vec![0.0; m.cols()];
            for r in 0..m.rows() {
                for (j, &x) in m.row(r).iter().enumerate() {
                    v[j] += x;
                }
            }
            Ok(WireValue::VecF64(v))
        },
    );
    reg.register("dpca_vecadd", |ins| {
        let a = ins[0].as_vec_f64();
        let b = ins[1].as_vec_f64();
        if a.len() != b.len() {
            return Err(format!(
                "vecadd length mismatch: {} vs {}",
                a.len(),
                b.len()
            ));
        }
        Ok(WireValue::VecF64(
            a.iter().zip(b).map(|(x, y)| x + y).collect(),
        ))
    });
    reg.register("dpca_mean", |ins| {
        let sums = ins[0].as_vec_f64();
        let n = ins[1].as_u64() as f64;
        Ok(WireValue::VecF64(sums.iter().map(|s| s / n).collect()))
    });
    reg.register("dpca_center", |ins| {
        let m = ins[0].as_matrix();
        let mean = ins[1].as_vec_f64();
        let mut out = m.clone();
        for r in 0..out.rows() {
            for (j, x) in out.row_mut(r).iter_mut().enumerate() {
                *x -= mean[j];
            }
        }
        Ok(WireValue::Matrix(out))
    });
    reg.register_with("dpca_gram", OnFailure::Retry, RetryPolicy::new(3), |ins| {
        let m = ins[0].as_matrix();
        Ok(WireValue::Matrix(m.t_matmul(m)))
    });
    reg.register("dpca_madd", |ins| {
        let mut out = ins[0].as_matrix().clone();
        out.add_assign(ins[1].as_matrix());
        Ok(WireValue::Matrix(out))
    });
    reg.register("dpca_scale", |ins| {
        let mut g = ins[0].as_matrix().clone();
        let n = ins[1].as_u64();
        g.scale(1.0 / (n as f64 - 1.0));
        Ok(WireValue::Matrix(g))
    });
    reg.register("dpca_eigh", |ins| {
        let cov = ins[0].as_matrix();
        let k = ins[1].as_u64() as usize;
        let res = eigh(cov);
        let d = res.values.len();
        let k = k.clamp(1, d);
        // Descending eigenvalue order, as in `crate::pca::Pca::fit`.
        let values: Vec<f64> = res.values.iter().rev().copied().collect();
        let vectors = Matrix::from_fn(d, d, |r, col| res.vectors.get(r, d - 1 - col));
        Ok(WireValue::List(vec![
            WireValue::Matrix(vectors.slice_cols(0, k)),
            WireValue::VecF64(values[..k].to_vec()),
        ]))
    });
    reg.register("dpca_project", |ins| {
        let centered = ins[0].as_matrix();
        let comp = ins[1].as_list()[0].as_matrix();
        Ok(WireValue::Matrix(centered.matmul(comp)))
    });
    reg.register("dpca_vstack", |ins| {
        let mut out = ins[0].as_matrix().clone();
        for band in &ins[1..] {
            out = out.vstack(band.as_matrix());
        }
        Ok(WireValue::Matrix(out))
    });
}

/// Pairwise tree reduction inside a plan — fixed shape, so the combine
/// order (and therefore every floating-point bit) is part of the plan.
fn tree_reduce(plan: &mut Plan, kind: &str, mut level: Vec<u64>) -> u64 {
    assert!(!level.is_empty());
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            match pair {
                [a, b] => next.push(plan.task(kind, &[*a, *b])),
                [a] => next.push(*a),
                _ => unreachable!(),
            }
        }
        level = next;
    }
    level[0]
}

/// Builds the distributed PCA plan: fit on `x` (partitioned into
/// `block_rows`-row bands) keeping `k` components, then project `x`.
pub fn pca_plan(x: &Matrix, block_rows: usize, k: usize) -> (Plan, PcaPlanOutputs) {
    let n = x.rows();
    assert!(n >= 2, "PCA needs at least two samples");
    assert!(block_rows >= 1);
    let mut plan = Plan::new();
    let n_id = plan.put(WireValue::U64(n as u64));
    let k_id = plan.put(WireValue::U64(k as u64));
    let blocks: Vec<u64> = (0..n)
        .step_by(block_rows)
        .map(|r0| {
            let r1 = (r0 + block_rows).min(n);
            plan.put(WireValue::Matrix(x.slice_rows(r0, r1)))
        })
        .collect();

    // Phase 1: column sums → mean.
    let partial_sums: Vec<u64> = blocks
        .iter()
        .map(|&b| plan.task("dpca_colsum", &[b]))
        .collect();
    let total = tree_reduce(&mut plan, "dpca_vecadd", partial_sums);
    let mean = plan.task("dpca_mean", &[total, n_id]);

    // Center each block, phase 2: Gram → covariance.
    let centered: Vec<u64> = blocks
        .iter()
        .map(|&b| plan.task("dpca_center", &[b, mean]))
        .collect();
    let grams: Vec<u64> = centered
        .iter()
        .map(|&c| plan.task("dpca_gram", &[c]))
        .collect();
    let gram = tree_reduce(&mut plan, "dpca_madd", grams);
    let cov = plan.task("dpca_scale", &[gram, n_id]);

    // Single eigendecomposition task, then per-block projection.
    let eig = plan.task("dpca_eigh", &[cov, k_id]);
    let projected: Vec<u64> = centered
        .iter()
        .map(|&c| plan.task("dpca_project", &[c, eig]))
        .collect();
    let projection = tree_reduce(&mut plan, "dpca_vstack", projected);

    plan.mark_output(eig);
    plan.mark_output(projection);
    (plan, PcaPlanOutputs { eig, projection })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pca::{Components, Pca};
    use dsarray::DsArray;
    use std::collections::BTreeMap;
    use std::sync::Arc;
    use taskrt::Runtime;

    fn data(n: usize, d: usize) -> Matrix {
        Matrix::from_fn(n, d, |r, c| ((r * 31 + c * 17) % 101) as f64 / 7.0 - 5.0)
    }

    fn registry() -> KindRegistry {
        let mut reg = KindRegistry::new();
        register_pca_kinds(&mut reg);
        reg
    }

    #[test]
    fn inline_plan_matches_threaded_pca_numerically() {
        let x = data(96, 6);
        let k = 3;
        let (plan, outs) = pca_plan(&x, 24, k);
        let reg = registry();
        let store = plan.run_inline(&reg).unwrap();
        let eig = store[&outs.eig].as_list();
        let comp = eig[0].as_matrix();
        let ev = eig[1].as_vec_f64();
        assert_eq!(comp.shape(), (6, k));
        assert_eq!(ev.len(), k);

        let rt = Runtime::new();
        let ds = DsArray::from_matrix(&rt, &x, 24, 6);
        let pca = Pca::fit(&rt, &ds, Components::Count(k));
        let t_comp = rt.peek(pca.components);
        let t_ev = rt.peek(pca.explained_variance);
        // Same math, different reduction trees: approximate agreement
        // (up to eigenvector sign).
        for c in 0..k {
            assert!((ev[c] - t_ev[c]).abs() <= 1e-9 * t_ev[c].abs().max(1.0));
            let sign = if comp.get(0, c) * t_comp.get(0, c) < 0.0 {
                -1.0
            } else {
                1.0
            };
            for r in 0..6 {
                assert!(
                    (comp.get(r, c) - sign * t_comp.get(r, c)).abs() < 1e-8,
                    "component {c} row {r} diverged"
                );
            }
        }
        let proj = store[&outs.projection].as_matrix();
        assert_eq!(proj.shape(), (96, k));
    }

    #[test]
    fn distributed_run_is_bit_identical_to_inline() {
        use taskrt::dist::{fingerprint, DistConfig, DistRuntime};
        let x = data(64, 5);
        let (plan, _) = pca_plan(&x, 16, 2);
        let reg = Arc::new(registry());
        let inline: BTreeMap<_, _> = plan.run_inline(&reg).unwrap();
        let mut rt = DistRuntime::launch_threads(DistConfig::with_workers(3), &reg).unwrap();
        let report = rt.run(&plan, &reg).unwrap();
        assert_eq!(
            fingerprint(&report.outputs),
            fingerprint(&inline),
            "distributed PCA must match the inline oracle bit for bit"
        );
        assert_eq!(report.trace.records.len(), plan.len());
        let shutdown = rt.shutdown();
        assert_eq!(shutdown.workers_reaped, 3);
        assert!(shutdown.sock_dir_removed);
    }
}
