//! StandardScaler (paper §IV-B).
//!
//! "This scaler removes the mean value of the features and divides the
//! data by its standard deviation in order to reduce the variance to a
//! unit. The StandardScaler is part of the dislib library, the
//! parallelism being based on the number of row blocks." Required by the
//! KNN pipeline so no feature dominates the distance metric.

use dsarray::DsArray;
use taskrt::{Handle, Runtime};

/// A fitted standard scaler.
pub struct StandardScaler {
    /// Per-column means.
    pub mean: Handle<Vec<f64>>,
    /// Per-column population standard deviations.
    pub std: Handle<Vec<f64>>,
}

impl StandardScaler {
    /// Computes per-column mean and standard deviation with one partial
    /// task per block plus reductions (`scaler_*` task kinds).
    pub fn fit(rt: &Runtime, x: &DsArray) -> Self {
        let (n, _) = x.shape();
        let sums = x.col_sums(rt);
        let mean = rt.task("scaler_mean").run1(sums, move |s: &Vec<f64>| {
            s.iter().map(|v| v / n as f64).collect::<Vec<f64>>()
        });
        // E[x^2] via squared blocks, then var = E[x^2] - mean^2.
        let squared = x.map_blocks(rt, "scaler_sq", |b| {
            let mut out = b.clone();
            for v in out.as_mut_slice() {
                *v *= *v;
            }
            out
        });
        let sq_sums = squared.col_sums(rt);
        let std =
            rt.task("scaler_std")
                .run2(sq_sums, mean, move |sq: &Vec<f64>, mean: &Vec<f64>| {
                    sq.iter()
                        .zip(mean)
                        .map(|(s, m)| (s / n as f64 - m * m).max(0.0).sqrt())
                        .collect::<Vec<f64>>()
                });
        StandardScaler { mean, std }
    }

    /// Applies `(x - mean) / std` block-wise; constant columns are left
    /// centered but unscaled.
    ///
    /// The centered intermediate is consumed by the scaling step with
    /// `direction=INOUT` — its blocks are single-consumer by
    /// construction, so the division always happens in place.
    pub fn transform(&self, rt: &Runtime, x: &DsArray) -> DsArray {
        x.sub_row_vector(rt, self.mean)
            .div_row_vector_inplace(rt, self.std)
    }

    /// Fit + transform in one call.
    pub fn fit_transform(rt: &Runtime, x: &DsArray) -> (Self, DsArray) {
        let scaler = Self::fit(rt, x);
        let out = scaler.transform(rt, x);
        (scaler, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::Matrix;

    fn skewed() -> Matrix {
        // Columns with very different ranges (the KNN motivation).
        Matrix::from_fn(40, 3, |r, c| match c {
            0 => r as f64 * 1000.0,
            1 => (r as f64 * 0.37).sin(),
            _ => 5.0, // constant column
        })
    }

    #[test]
    fn transform_yields_zero_mean_unit_var() {
        let rt = Runtime::new();
        let x = skewed();
        let ds = DsArray::from_matrix(&rt, &x, 13, 2);
        let (_, scaled) = StandardScaler::fit_transform(&rt, &ds);
        let m = scaled.collect(&rt);
        for c in 0..2 {
            let col = m.col(c);
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            let var: f64 =
                col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-9, "col {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-9, "col {c} var {var}");
        }
    }

    #[test]
    fn constant_column_is_centered_not_scaled() {
        let rt = Runtime::new();
        let ds = DsArray::from_matrix(&rt, &skewed(), 10, 3);
        let (_, scaled) = StandardScaler::fit_transform(&rt, &ds);
        let m = scaled.collect(&rt);
        assert!(m.col(2).iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn fitted_stats_match_dense() {
        let rt = Runtime::new();
        let x = skewed();
        let ds = DsArray::from_matrix(&rt, &x, 7, 2);
        let scaler = StandardScaler::fit(&rt, &ds);
        let mean = rt.peek(scaler.mean);
        let std = rt.peek(scaler.std);
        let dm = x.col_means();
        let dstd = x.col_stds(&dm);
        for c in 0..3 {
            assert!((mean[c] - dm[c]).abs() < 1e-9);
            assert!((std[c] - dstd[c]).abs() < 1e-9);
        }
    }

    #[test]
    fn fused_fit_transform_matches_unfused() {
        // StandardScaler's fit + transform under the graph-rewrite
        // optimizer: per-block centering/scaling chains fuse, the stats
        // and the scaled matrix stay bit-identical.
        use taskrt::RuntimeConfig;
        let x = skewed();
        let run = |fuse: bool| {
            let rt = Runtime::with_config(RuntimeConfig {
                fuse,
                ..RuntimeConfig::default()
            });
            let ds = DsArray::from_matrix_owned(&rt, x.clone(), 13, 2);
            let (scaler, scaled) = StandardScaler::fit_transform(&rt, &ds);
            let mean = (*rt.peek(scaler.mean)).clone();
            let std = (*rt.peek(scaler.std)).clone();
            (mean, std, scaled.collect(&rt), rt.trace().user_task_count())
        };
        let (mean_e, std_e, out_e, tasks_eager) = run(false);
        let (mean_f, std_f, out_f, tasks_fused) = run(true);
        assert_eq!(mean_f, mean_e);
        assert_eq!(std_f, std_e);
        assert_eq!(out_f, out_e, "scaled output must be bit-identical");
        assert!(
            tasks_fused < tasks_eager,
            "fusion must dispatch fewer tasks ({tasks_fused} vs {tasks_eager})"
        );
    }

    #[test]
    fn parallelism_scales_with_blocks() {
        let rt = Runtime::new();
        let ds = DsArray::from_matrix(&rt, &skewed(), 5, 3);
        let _ = StandardScaler::fit(&rt, &ds);
        let hist = rt.trace().task_histogram();
        assert_eq!(hist["scaler_sq"], 8); // one per block
    }
}
