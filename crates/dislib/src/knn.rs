//! K-nearest-neighbours classification (paper §III-C2, Figs. 5–6).
//!
//! Mirrors the dislib structure: `fit` "launches a fit from the
//! scikit-learn NN into each row block" — here a `knn_fit` task per row
//! block that materializes the block as a searchable structure — and
//! `predict` "makes a task per block in the row axis": each test block
//! queries every model block (`knn_query`), candidate neighbour sets are
//! merged pairwise (`knn_merge`), and a final `knn_vote` task applies
//! the uniform- or distance-weighted vote.

use dsarray::{tree_reduce, DsArray, DsLabels};
use linalg::{pairwise_sq_dists, Matrix};
use taskrt::{Handle, Payload, Runtime};

/// Prediction weighting (the paper's parameter (2)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Weights {
    /// All neighbours count equally.
    Uniform,
    /// Neighbours weighted by inverse distance.
    Distance,
}

/// KNN hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct KnnParams {
    /// Number of neighbours per query (the paper's parameter (1)).
    pub k: usize,
    /// Vote weighting.
    pub weights: Weights,
    /// Cores per task in the simulator (paper configuration: 4 cores,
    /// 12 tasks per node).
    pub task_cores: u32,
}

impl Default for KnnParams {
    fn default() -> Self {
        Self {
            k: 5,
            weights: Weights::Uniform,
            task_cores: 4,
        }
    }
}

/// Candidate neighbours for a block of query rows: for each query row,
/// up to `k` `(distance_sq, label)` pairs sorted ascending by distance.
#[derive(Debug, Clone)]
pub struct Neighbors {
    /// `cand[q]` = sorted candidate list for query row `q`.
    pub cand: Vec<Vec<(f64, u8)>>,
    /// k requested.
    pub k: usize,
}

impl Payload for Neighbors {
    fn approx_bytes(&self) -> usize {
        self.cand.iter().map(|c| c.len() * 9 + 24).sum::<usize>() + 16
    }
}

/// Merges two candidate sets keeping the `k` nearest per query row.
fn merge_neighbors(a: &Neighbors, b: &Neighbors) -> Neighbors {
    assert_eq!(a.cand.len(), b.cand.len(), "query count mismatch in merge");
    let k = a.k;
    let cand = a
        .cand
        .iter()
        .zip(&b.cand)
        .map(|(ca, cb)| {
            let mut merged = Vec::with_capacity(k);
            let (mut i, mut j) = (0, 0);
            while merged.len() < k && (i < ca.len() || j < cb.len()) {
                let take_a = match (ca.get(i), cb.get(j)) {
                    (Some(x), Some(y)) => x.0 <= y.0,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                if take_a {
                    merged.push(ca[i]);
                    i += 1;
                } else {
                    merged.push(cb[j]);
                    j += 1;
                }
            }
            merged
        })
        .collect();
    Neighbors { cand, k }
}

/// A fitted distributed KNN model.
pub struct KnnClassifier {
    parts: Vec<Handle<(Matrix, Vec<u8>)>>,
    params: KnnParams,
}

impl KnnClassifier {
    /// Fits the model: one `knn_fit` task per row block (parallelism
    /// bounded by the number of row blocks, as the paper notes).
    pub fn fit(rt: &Runtime, x: &DsArray, y: &DsLabels, params: KnnParams) -> Self {
        assert_eq!(x.n_row_blocks(), y.n_parts(), "partition mismatch");
        assert!(params.k >= 1, "k must be at least 1");
        let parts = x
            .row_bands(rt)
            .into_iter()
            .enumerate()
            .map(|(i, band)| {
                rt.task("knn_fit").cores(params.task_cores).run2(
                    band,
                    y.part(i),
                    |m: &Matrix, labels: &Vec<u8>| (m.clone(), labels.clone()),
                )
            })
            .collect();
        KnnClassifier { parts, params }
    }

    /// Predicts one label per row of the blocked query set; one task
    /// pipeline per query block.
    pub fn predict(&self, rt: &Runtime, x: &DsArray) -> Vec<Handle<Vec<u8>>> {
        x.row_bands(rt)
            .into_iter()
            .map(|qband| self.predict_band(rt, qband))
            .collect()
    }

    /// Prediction pipeline for one query band.
    pub fn predict_band(&self, rt: &Runtime, qband: Handle<Matrix>) -> Handle<Vec<u8>> {
        let k = self.params.k;
        let candidates: Vec<Handle<Neighbors>> = self
            .parts
            .iter()
            .map(|&part| {
                rt.task("knn_query").cores(self.params.task_cores).run2(
                    part,
                    qband,
                    move |model: &(Matrix, Vec<u8>), q: &Matrix| query_block(model, q, k),
                )
            })
            .collect();
        let merged = tree_reduce(rt, "knn_merge", &candidates, merge_neighbors);
        let weights = self.params.weights;
        rt.task("knn_vote")
            .cores(self.params.task_cores)
            .run1(merged, move |nb: &Neighbors| vote(nb, weights))
    }

    /// Accuracy over a labeled blocked test set, reduced to
    /// `(correct, total)`.
    pub fn score(&self, rt: &Runtime, x: &DsArray, y: &DsLabels) -> Handle<(u64, u64)> {
        assert_eq!(x.n_row_blocks(), y.n_parts());
        let partials: Vec<Handle<(u64, u64)>> = x
            .row_bands(rt)
            .into_iter()
            .enumerate()
            .map(|(i, qband)| {
                let pred = self.predict_band(rt, qband);
                rt.task("knn_score")
                    .run2(pred, y.part(i), |p: &Vec<u8>, t: &Vec<u8>| {
                        let correct = p.iter().zip(t).filter(|(a, b)| a == b).count() as u64;
                        (correct, t.len() as u64)
                    })
            })
            .collect();
        tree_reduce(rt, "knn_score_reduce", &partials, |a, b| {
            (a.0 + b.0, a.1 + b.1)
        })
    }
}

/// Brute-force k-nearest search of a query block against one model block.
///
/// Distances for the whole block come from one blocked GEMM
/// ([`pairwise_sq_dists`]) instead of a per-pair subtract-square pass;
/// a query row identical to a model row still scores exactly `0.0`.
fn query_block(model: &(Matrix, Vec<u8>), q: &Matrix, k: usize) -> Neighbors {
    let (mx, my) = model;
    let d2 = pairwise_sq_dists(q, mx);
    let cand = (0..q.rows())
        .map(|r| {
            let mut dists: Vec<(f64, u8)> = d2
                .row(r)
                .iter()
                .zip(my)
                .map(|(&d, &label)| (d, label))
                .collect();
            dists.sort_by(|a, b| a.0.total_cmp(&b.0));
            dists.truncate(k);
            dists
        })
        .collect();
    Neighbors { cand, k }
}

/// Applies the (weighted) majority vote per query row.
fn vote(nb: &Neighbors, weights: Weights) -> Vec<u8> {
    nb.cand
        .iter()
        .map(|c| {
            let mut w = [0.0f64; 2];
            for &(d, label) in c {
                let weight = match weights {
                    Weights::Uniform => 1.0,
                    Weights::Distance => 1.0 / (d.sqrt() + 1e-12),
                };
                w[label as usize] += weight;
            }
            u8::from(w[1] > w[0])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::blobs;

    fn setup(
        n: usize,
        blocks: usize,
        params: KnnParams,
    ) -> (Runtime, KnnClassifier, DsArray, DsLabels) {
        let rt = Runtime::new();
        let (x, y) = blobs(n, 2.0, 21);
        let rb = x.rows().div_ceil(blocks);
        let ds = DsArray::from_matrix(&rt, &x, rb, x.cols());
        let dl = DsLabels::from_slice(&rt, &y, rb);
        let model = KnnClassifier::fit(&rt, &ds, &dl, params);
        (rt, model, ds, dl)
    }

    #[test]
    fn classifies_blobs() {
        let (rt, model, ds, dl) = setup(40, 4, KnnParams::default());
        let (c, t) = *rt.wait(model.score(&rt, &ds, &dl));
        assert_eq!(t, 80);
        assert!(c as f64 / t as f64 > 0.95, "acc={}", c as f64 / t as f64);
    }

    #[test]
    fn single_neighbor_on_train_is_perfect() {
        let params = KnnParams {
            k: 1,
            ..Default::default()
        };
        let (rt, model, ds, dl) = setup(25, 3, params);
        let (c, t) = *rt.wait(model.score(&rt, &ds, &dl));
        assert_eq!(c, t, "1-NN on its own training set must be exact");
    }

    #[test]
    fn distance_weighting_beats_ties() {
        // k=2 with one close and one far neighbour of opposite classes:
        // distance weighting must pick the close one.
        let nb = Neighbors {
            cand: vec![vec![(0.01, 1), (4.0, 0)]],
            k: 2,
        };
        assert_eq!(vote(&nb, Weights::Distance), vec![1]);
        // Uniform vote ties at 1-1 and falls to class 0 by convention.
        assert_eq!(vote(&nb, Weights::Uniform), vec![0]);
    }

    #[test]
    fn merge_keeps_global_nearest() {
        let a = Neighbors {
            cand: vec![vec![(1.0, 0), (3.0, 0)]],
            k: 2,
        };
        let b = Neighbors {
            cand: vec![vec![(0.5, 1), (2.0, 1)]],
            k: 2,
        };
        let m = merge_neighbors(&a, &b);
        assert_eq!(m.cand[0], vec![(0.5, 1), (1.0, 0)]);
    }

    #[test]
    fn merge_handles_short_candidate_lists() {
        let a = Neighbors {
            cand: vec![vec![(1.0, 0)]],
            k: 3,
        };
        let b = Neighbors {
            cand: vec![vec![(0.5, 1)]],
            k: 3,
        };
        let m = merge_neighbors(&a, &b);
        assert_eq!(m.cand[0].len(), 2);
    }

    #[test]
    fn task_structure_per_band() {
        let (rt, model, ds, _dl) = setup(40, 4, KnnParams::default());
        let before = rt.trace().task_histogram();
        assert_eq!(before["knn_fit"], 4);
        let _pred = model.predict(&rt, &ds);
        let hist = rt.trace().task_histogram();
        // Each of the 4 query bands queries 4 model parts.
        assert_eq!(hist["knn_query"], 16);
        assert_eq!(hist["knn_merge"], 12); // 3 per band
        assert_eq!(hist["knn_vote"], 4);
    }

    #[test]
    fn works_when_k_exceeds_block_size() {
        let params = KnnParams {
            k: 7,
            ..Default::default()
        };
        let (rt, model, ds, dl) = setup(10, 5, params); // blocks of 4 rows
        let (c, t) = *rt.wait(model.score(&rt, &ds, &dl));
        assert_eq!(t, 20);
        assert!(c > 10);
    }
}
