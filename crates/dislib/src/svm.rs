//! C-Support Vector Classification via Sequential Minimal Optimization.
//!
//! This is the scikit-learn `SVC` stand-in used *inside* each
//! CascadeSVM task (paper §III-C1: "each of these tasks use
//! scikit-learn's SVC internally for training"). The solver is Platt's
//! simplified SMO with a full precomputed Gram matrix — appropriate
//! because cascade subsets are block-sized (≤ a few hundred samples).

use linalg::{Kernel, Matrix};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// SVC hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct SvcParams {
    /// Soft-margin penalty.
    pub c: f64,
    /// Kernel function.
    pub kernel: Kernel,
    /// KKT violation tolerance.
    pub tol: f64,
    /// Number of consecutive zero-update sweeps before declaring
    /// convergence.
    pub max_passes: usize,
    /// Hard iteration cap (sweeps).
    pub max_sweeps: usize,
    /// RNG seed for the partner-choice heuristic.
    pub seed: u64,
}

impl Default for SvcParams {
    fn default() -> Self {
        Self {
            c: 1.0,
            kernel: Kernel::Rbf { gamma: 0.1 },
            tol: 1e-3,
            max_passes: 5,
            max_sweeps: 200,
            seed: 0,
        }
    }
}

/// A trained support-vector classifier.
#[derive(Debug, Clone)]
pub struct SvcModel {
    /// Support vectors (rows).
    pub support_vectors: Matrix,
    /// Original 0/1 labels of the support vectors.
    pub support_labels: Vec<u8>,
    /// Per-SV coefficient `alpha_i * y_i` with `y in {-1, +1}`.
    pub dual_coef: Vec<f64>,
    /// Intercept.
    pub intercept: f64,
    /// Kernel (needed at prediction time).
    pub kernel: Kernel,
}

impl taskrt::Payload for SvcModel {
    fn approx_bytes(&self) -> usize {
        self.support_vectors.approx_bytes()
            + self.support_labels.len()
            + self.dual_coef.len() * std::mem::size_of::<f64>()
            + std::mem::size_of::<Self>()
    }
}

impl SvcModel {
    /// Signed decision value for one sample (positive ⇒ class 1).
    pub fn decision(&self, x: &[f64]) -> f64 {
        let mut acc = self.intercept;
        for (i, &coef) in self.dual_coef.iter().enumerate() {
            acc += coef * self.kernel.eval(self.support_vectors.row(i), x);
        }
        acc
    }

    /// Predicted 0/1 label for one sample.
    pub fn predict_one(&self, x: &[f64]) -> u8 {
        u8::from(self.decision(x) > 0.0)
    }

    /// Predicted labels for every row of `x`.
    pub fn predict(&self, x: &Matrix) -> Vec<u8> {
        (0..x.rows()).map(|r| self.predict_one(x.row(r))).collect()
    }

    /// Number of support vectors.
    pub fn n_support(&self) -> usize {
        self.support_labels.len()
    }
}

/// Trains an SVC on `x` (rows = samples) with 0/1 labels `y`.
///
/// # Panics
/// Panics if `x` is empty, lengths mismatch, or only one class is
/// present (the cascade never produces such subsets for balanced data;
/// callers must guard degenerate folds).
pub fn fit_svc(x: &Matrix, y: &[u8], params: &SvcParams) -> SvcModel {
    let m = x.rows();
    assert_eq!(m, y.len(), "sample/label count mismatch");
    assert!(m >= 2, "need at least two samples");
    let ys: Vec<f64> = y.iter().map(|&l| if l == 1 { 1.0 } else { -1.0 }).collect();
    assert!(
        ys.iter().any(|&v| v > 0.0) && ys.iter().any(|&v| v < 0.0),
        "SVC requires both classes present"
    );

    // Precomputed Gram matrix.
    let k = params.kernel.gram(x, x);
    let mut alpha = vec![0.0f64; m];
    let mut b = 0.0f64;
    let mut rng = StdRng::seed_from_u64(params.seed);

    let f = |alpha: &[f64], b: f64, i: usize, k: &Matrix, ys: &[f64]| -> f64 {
        let mut acc = b;
        for (j, &a) in alpha.iter().enumerate() {
            if a != 0.0 {
                acc += a * ys[j] * k.get(j, i);
            }
        }
        acc
    };

    let mut passes = 0;
    let mut sweeps = 0;
    while passes < params.max_passes && sweeps < params.max_sweeps {
        sweeps += 1;
        let mut changed = 0;
        for i in 0..m {
            let ei = f(&alpha, b, i, &k, &ys) - ys[i];
            let r = ys[i] * ei;
            if (r < -params.tol && alpha[i] < params.c) || (r > params.tol && alpha[i] > 0.0) {
                // Random partner j != i.
                let mut j = rng.random_range(0..m - 1);
                if j >= i {
                    j += 1;
                }
                let ej = f(&alpha, b, j, &k, &ys) - ys[j];
                let (ai_old, aj_old) = (alpha[i], alpha[j]);
                let (lo, hi) = if ys[i] != ys[j] {
                    (
                        (aj_old - ai_old).max(0.0),
                        (params.c + aj_old - ai_old).min(params.c),
                    )
                } else {
                    (
                        (ai_old + aj_old - params.c).max(0.0),
                        (ai_old + aj_old).min(params.c),
                    )
                };
                if (hi - lo).abs() < 1e-12 {
                    continue;
                }
                let eta = 2.0 * k.get(i, j) - k.get(i, i) - k.get(j, j);
                if eta >= 0.0 {
                    continue;
                }
                let mut aj = aj_old - ys[j] * (ei - ej) / eta;
                aj = aj.clamp(lo, hi);
                if (aj - aj_old).abs() < 1e-5 {
                    continue;
                }
                let ai = ai_old + ys[i] * ys[j] * (aj_old - aj);
                alpha[i] = ai;
                alpha[j] = aj;
                let b1 = b
                    - ei
                    - ys[i] * (ai - ai_old) * k.get(i, i)
                    - ys[j] * (aj - aj_old) * k.get(i, j);
                let b2 = b
                    - ej
                    - ys[i] * (ai - ai_old) * k.get(i, j)
                    - ys[j] * (aj - aj_old) * k.get(j, j);
                b = if ai > 0.0 && ai < params.c {
                    b1
                } else if aj > 0.0 && aj < params.c {
                    b2
                } else {
                    0.5 * (b1 + b2)
                };
                changed += 1;
            }
        }
        if changed == 0 {
            passes += 1;
        } else {
            passes = 0;
        }
    }

    // Extract support vectors (alpha > threshold).
    let sv_idx: Vec<usize> = (0..m).filter(|&i| alpha[i] > 1e-8).collect();
    // Degenerate guard: keep at least one sample of each class so the
    // cascade's merged sets stay trainable.
    let sv_idx = if sv_idx.is_empty() {
        vec![
            ys.iter().position(|&v| v > 0.0).unwrap(),
            ys.iter().position(|&v| v < 0.0).unwrap(),
        ]
    } else {
        sv_idx
    };

    let support_vectors = x.take_rows(&sv_idx);
    let support_labels: Vec<u8> = sv_idx.iter().map(|&i| y[i]).collect();
    let dual_coef: Vec<f64> = sv_idx.iter().map(|&i| alpha[i] * ys[i]).collect();
    SvcModel {
        support_vectors,
        support_labels,
        dual_coef,
        intercept: b,
        kernel: params.kernel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::testutil::blobs;

    #[test]
    fn separates_blobs_linear() {
        let (x, y) = blobs(40, 2.0, 1);
        let params = SvcParams {
            kernel: Kernel::Linear,
            ..Default::default()
        };
        let model = fit_svc(&x, &y, &params);
        let pred = model.predict(&x);
        assert!(accuracy(&y, &pred) > 0.97, "acc={}", accuracy(&y, &pred));
    }

    #[test]
    fn separates_blobs_rbf() {
        let (x, y) = blobs(40, 2.0, 2);
        let params = SvcParams {
            kernel: Kernel::Rbf { gamma: 0.5 },
            ..Default::default()
        };
        let model = fit_svc(&x, &y, &params);
        assert!(accuracy(&y, &model.predict(&x)) > 0.97);
    }

    #[test]
    fn rbf_solves_xor() {
        // XOR is not linearly separable; RBF must handle it.
        let rows = vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![0.1, 0.1],
            vec![0.9, 0.9],
            vec![0.1, 0.9],
            vec![0.9, 0.1],
        ];
        let y = vec![0, 0, 1, 1, 0, 0, 1, 1];
        let x = Matrix::from_rows(&rows);
        let params = SvcParams {
            c: 10.0,
            kernel: Kernel::Rbf { gamma: 3.0 },
            ..Default::default()
        };
        let model = fit_svc(&x, &y, &params);
        assert_eq!(model.predict(&x), y);
    }

    #[test]
    fn support_vectors_are_subset() {
        let (x, y) = blobs(30, 1.0, 3);
        let model = fit_svc(&x, &y, &SvcParams::default());
        assert!(model.n_support() >= 2);
        assert!(model.n_support() <= x.rows());
        assert_eq!(model.dual_coef.len(), model.n_support());
        // Margin-interior points of well-separated blobs are not SVs.
        let (x2, y2) = blobs(50, 3.0, 4);
        let m2 = fit_svc(
            &x2,
            &y2,
            &SvcParams {
                kernel: Kernel::Linear,
                ..Default::default()
            },
        );
        assert!(m2.n_support() < x2.rows() / 2, "n_sv={}", m2.n_support());
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs(20, 1.5, 5);
        let a = fit_svc(&x, &y, &SvcParams::default());
        let b = fit_svc(&x, &y, &SvcParams::default());
        assert_eq!(a.dual_coef, b.dual_coef);
        assert_eq!(a.intercept, b.intercept);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn rejects_single_class() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let _ = fit_svc(&x, &[1, 1], &SvcParams::default());
    }

    #[test]
    fn decision_sign_matches_prediction() {
        let (x, y) = blobs(20, 2.0, 6);
        let model = fit_svc(&x, &y, &SvcParams::default());
        for r in 0..x.rows() {
            let d = model.decision(x.row(r));
            assert_eq!(u8::from(d > 0.0), model.predict_one(x.row(r)));
        }
        let _ = y;
    }
}
