//! Shared helpers for the dislib unit tests.

use linalg::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Standard normal via Box–Muller (tests only).
pub fn randn(rng: &mut StdRng) -> f64 {
    loop {
        let u1 = rng.random::<f64>();
        let u2 = rng.random::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Two Gaussian blobs centred at `(-gap, 0)` and `(+gap, 0)` with unit/2
/// spread, interleaved labels.
pub fn blobs(n_per: usize, gap: f64, seed: u64) -> (Matrix, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    let mut y = Vec::new();
    for i in 0..2 * n_per {
        let cls = (i % 2) as u8;
        let cx = if cls == 1 { gap } else { -gap };
        rows.push(vec![cx + randn(&mut rng) * 0.5, randn(&mut rng) * 0.5]);
        y.push(cls);
    }
    (Matrix::from_rows(&rows), y)
}

/// Higher-dimensional blobs: class difference only along the first axis,
/// the remaining `dims - 1` axes are noise.
pub fn blobs_nd(n_per: usize, dims: usize, gap: f64, seed: u64) -> (Matrix, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    let mut y = Vec::new();
    for i in 0..2 * n_per {
        let cls = (i % 2) as u8;
        let cx = if cls == 1 { gap } else { -gap };
        let mut row = vec![cx + randn(&mut rng) * 0.5];
        for _ in 1..dims {
            row.push(randn(&mut rng));
        }
        rows.push(row);
        y.push(cls);
    }
    (Matrix::from_rows(&rows), y)
}
