//! Cascade Support Vector Machine (paper §III-C1, Fig. 3).
//!
//! The CSVM estimator "parallelises training by using a cascade
//! structure. The algorithm splits the input data into N subsets, trains
//! each subset independently, merges the computed support vectors of
//! each subset two by two, and trains again each merged group". One
//! iteration ends when a single support-vector group remains; further
//! iterations feed the surviving support vectors back into every
//! original subset.
//!
//! Task structure (names appear in the execution graph of Fig. 4):
//!
//! * `csvm_fit` — one per row block of the input ds-array (the
//!   parallelism bound the paper calls out),
//! * `csvm_merge` — pairwise reduction tasks,
//! * `csvm_final` — trains the deployable [`SvcModel`] on the last
//!   surviving support-vector set,
//! * `csvm_predict` / `csvm_score` — per-row-block inference.

use crate::svm::{fit_svc, SvcModel, SvcParams};
use dsarray::{tree_reduce, DsArray, DsLabels};
use linalg::Matrix;
use taskrt::{Handle, Runtime};

/// A labeled sample set flowing through the cascade: `(rows, labels)`.
pub type Labeled = (Matrix, Vec<u8>);

/// CascadeSVM hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct CascadeSvmParams {
    /// Parameters of the per-subset SVC solver.
    pub svc: SvcParams,
    /// Maximum number of cascade iterations (paper: "a fixed number of
    /// iterations or until a convergence criterion is met").
    pub cascade_iterations: usize,
    /// Optional convergence criterion: stop iterating early when the
    /// surviving support-vector count changes by less than this
    /// fraction between iterations. `None` always runs
    /// `cascade_iterations` rounds. Checking convergence synchronizes
    /// the driver between iterations, exactly as dislib does.
    pub convergence_tol: Option<f64>,
    /// Cores each cascade task occupies in the simulator (paper
    /// configuration: 8 cores per task, 6 tasks per 48-core node).
    pub task_cores: u32,
}

impl Default for CascadeSvmParams {
    fn default() -> Self {
        Self {
            svc: SvcParams::default(),
            cascade_iterations: 1,
            convergence_tol: None,
            task_cores: 8,
        }
    }
}

/// A fitted CascadeSVM.
pub struct CascadeSvm {
    /// Handle of the final trained model.
    pub model: Handle<SvcModel>,
    params: CascadeSvmParams,
}

/// Trains an SVC on a sample set and keeps only its support vectors; a
/// single-class subset passes through unchanged (can happen in ragged
/// tail blocks).
fn distill(set: &Labeled, params: &SvcParams) -> Labeled {
    let (x, y) = set;
    let has_both = y.contains(&1) && y.contains(&0);
    if !has_both || x.rows() < 2 {
        return set.clone();
    }
    let model = fit_svc(x, y, params);
    (model.support_vectors.clone(), model.support_labels.clone())
}

/// Concatenates two labeled sets.
fn merge(a: &Labeled, b: &Labeled) -> Labeled {
    let x = a.0.vstack(&b.0);
    let mut y = a.1.clone();
    y.extend_from_slice(&b.1);
    (x, y)
}

impl CascadeSvm {
    /// Fits the cascade on a blocked dataset. Submits one `csvm_fit`
    /// task per row block, `n_blocks - 1` `csvm_merge` tasks per
    /// iteration, and one `csvm_final` task.
    pub fn fit(rt: &Runtime, x: &DsArray, y: &DsLabels, params: CascadeSvmParams) -> Self {
        assert_eq!(
            x.n_row_blocks(),
            y.n_parts(),
            "data and labels must be partitioned identically"
        );
        let svc = params.svc;
        let bands = x.row_bands(rt);

        // Layer 0: distill each subset to its support vectors.
        let mut sv_sets: Vec<Handle<Labeled>> = bands
            .iter()
            .enumerate()
            .map(|(i, &band)| {
                rt.task("csvm_fit").cores(params.task_cores).run2(
                    band,
                    y.part(i),
                    move |m: &Matrix, labels: &Vec<u8>| distill(&(m.clone(), labels.clone()), &svc),
                )
            })
            .collect();

        // Cascade reduction; optionally iterate feeding the winners back.
        let mut survivors = Self::reduce_layer(rt, &sv_sets, params);
        let mut prev_sv_count = params.convergence_tol.map(|_| rt.wait(survivors).1.len());
        for _ in 1..params.cascade_iterations.max(1) {
            sv_sets = bands
                .iter()
                .enumerate()
                .map(|(i, &band)| {
                    rt.task("csvm_refit").cores(params.task_cores).run3(
                        band,
                        y.part(i),
                        survivors,
                        move |m: &Matrix, labels: &Vec<u8>, winners: &Labeled| {
                            let merged = merge(&(m.clone(), labels.clone()), winners);
                            distill(&merged, &svc)
                        },
                    )
                })
                .collect();
            survivors = Self::reduce_layer(rt, &sv_sets, params);
            // Convergence check (synchronizes the driver, like dislib's
            // `check_convergence`): stop when the SV count stabilizes.
            if let (Some(tol), Some(prev)) = (params.convergence_tol, prev_sv_count) {
                let count = rt.wait(survivors).1.len();
                let rel = (count as f64 - prev as f64).abs() / prev.max(1) as f64;
                prev_sv_count = Some(count);
                if rel < tol {
                    break;
                }
            }
        }

        let model =
            rt.task("csvm_final")
                .cores(params.task_cores)
                .run1(survivors, move |set: &Labeled| {
                    let (x, y) = set;
                    assert!(
                        y.contains(&1) && y.contains(&0),
                        "cascade collapsed to a single class"
                    );
                    fit_svc(x, y, &svc)
                });
        CascadeSvm { model, params }
    }

    fn reduce_layer(
        rt: &Runtime,
        sets: &[Handle<Labeled>],
        params: CascadeSvmParams,
    ) -> Handle<Labeled> {
        let svc = params.svc;
        // NOTE: tree_reduce does not let us set per-task cores; replicate
        // its pairwise pattern through a named task with resources.
        let mut level: Vec<Handle<Labeled>> = sets.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                if pair.len() == 2 {
                    next.push(rt.task("csvm_merge").cores(params.task_cores).run2(
                        pair[0],
                        pair[1],
                        move |a: &Labeled, b: &Labeled| distill(&merge(a, b), &svc),
                    ));
                } else {
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        level[0]
    }

    /// Predicts labels for every row block of `x`; one `csvm_predict`
    /// task per block.
    pub fn predict(&self, rt: &Runtime, x: &DsArray) -> Vec<Handle<Vec<u8>>> {
        x.row_bands(rt)
            .into_iter()
            .map(|band| {
                rt.task("csvm_predict").cores(self.params.task_cores).run2(
                    self.model,
                    band,
                    |model: &SvcModel, m: &Matrix| model.predict(m),
                )
            })
            .collect()
    }

    /// Mean accuracy on a labeled blocked test set (the dislib `score`
    /// operator): per-block `csvm_score` tasks followed by a reduction.
    pub fn score(&self, rt: &Runtime, x: &DsArray, y: &DsLabels) -> Handle<(u64, u64)> {
        assert_eq!(x.n_row_blocks(), y.n_parts());
        let partials: Vec<Handle<(u64, u64)>> = x
            .row_bands(rt)
            .into_iter()
            .enumerate()
            .map(|(i, band)| {
                rt.task("csvm_score").cores(self.params.task_cores).run3(
                    self.model,
                    band,
                    y.part(i),
                    |model: &SvcModel, m: &Matrix, labels: &Vec<u8>| {
                        let pred = model.predict(m);
                        let correct =
                            pred.iter().zip(labels).filter(|(p, t)| p == t).count() as u64;
                        (correct, labels.len() as u64)
                    },
                )
            })
            .collect();
        tree_reduce(rt, "csvm_score_reduce", &partials, |a, b| {
            (a.0 + b.0, a.1 + b.1)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::blobs;

    fn fit_demo(n: usize, blocks: usize) -> (Runtime, CascadeSvm, DsArray, DsLabels) {
        let rt = Runtime::new();
        let (x, y) = blobs(n, 2.0, 7);
        let rb = x.rows().div_ceil(blocks);
        let ds = DsArray::from_matrix(&rt, &x, rb, x.cols());
        let dl = DsLabels::from_slice(&rt, &y, rb);
        let model = CascadeSvm::fit(&rt, &ds, &dl, CascadeSvmParams::default());
        (rt, model, ds, dl)
    }

    #[test]
    fn cascade_learns_blobs() {
        let (rt, model, ds, dl) = fit_demo(60, 4);
        let (correct, total) = *rt.wait(model.score(&rt, &ds, &dl));
        assert!(total == 120);
        assert!(
            correct as f64 / total as f64 > 0.95,
            "acc={}",
            correct as f64 / total as f64
        );
    }

    #[test]
    fn task_structure_matches_cascade() {
        let (rt, _model, _ds, _dl) = fit_demo(40, 4);
        let hist = rt.trace().task_histogram();
        assert_eq!(hist["csvm_fit"], 4);
        assert_eq!(hist["csvm_merge"], 3); // 4 -> 2 -> 1
        assert_eq!(hist["csvm_final"], 1);
    }

    #[test]
    fn multiple_iterations_add_refit_layer() {
        let rt = Runtime::new();
        let (x, y) = blobs(40, 2.0, 8);
        let ds = DsArray::from_matrix(&rt, &x, 20, x.cols());
        let dl = DsLabels::from_slice(&rt, &y, 20);
        let params = CascadeSvmParams {
            cascade_iterations: 2,
            ..Default::default()
        };
        let model = CascadeSvm::fit(&rt, &ds, &dl, params);
        let hist = rt.trace().task_histogram();
        assert_eq!(hist["csvm_refit"], 4);
        let (c, t) = *rt.wait(model.score(&rt, &ds, &dl));
        assert!(c as f64 / t as f64 > 0.9);
    }

    #[test]
    fn convergence_criterion_stops_early() {
        let rt = Runtime::new();
        let (x, y) = blobs(40, 2.5, 12);
        let ds = DsArray::from_matrix(&rt, &x, 20, x.cols());
        let dl = DsLabels::from_slice(&rt, &y, 20);
        // Well-separated blobs: the SV set stabilizes immediately, so a
        // loose tolerance must cut the 5 requested iterations short.
        let params = CascadeSvmParams {
            cascade_iterations: 5,
            convergence_tol: Some(0.5),
            ..Default::default()
        };
        let model = CascadeSvm::fit(&rt, &ds, &dl, params);
        let _ = rt.wait(model.model);
        let with_conv = rt.trace().task_histogram()["csvm_refit"];

        let rt2 = Runtime::new();
        let ds2 = DsArray::from_matrix(&rt2, &x, 20, x.cols());
        let dl2 = DsLabels::from_slice(&rt2, &y, 20);
        let params = CascadeSvmParams {
            cascade_iterations: 5,
            convergence_tol: None,
            ..Default::default()
        };
        let _ = CascadeSvm::fit(&rt2, &ds2, &dl2, params);
        let without = rt2.trace().task_histogram()["csvm_refit"];
        assert!(
            with_conv < without,
            "expected early stop: {with_conv} vs {without} refit tasks"
        );
    }

    #[test]
    fn predictions_align_with_blocks() {
        let (rt, model, ds, _dl) = fit_demo(30, 3);
        let preds = model.predict(&rt, &ds);
        assert_eq!(preds.len(), ds.n_row_blocks());
        let total: usize = preds.iter().map(|&p| rt.wait(p).len()).sum();
        assert_eq!(total, 60);
    }

    #[test]
    fn single_class_block_passes_through() {
        // Craft labels so one block is all-positive; the cascade must
        // still converge because merges re-balance.
        let rt = Runtime::new();
        let (x, mut y) = blobs(20, 2.5, 9);
        // Sort labels so the first block is single-class.
        y.sort_unstable_by_key(|&l| l);
        let ds = DsArray::from_matrix(&rt, &x, 10, x.cols());
        let dl = DsLabels::from_slice(&rt, &y, 10);
        let model = CascadeSvm::fit(&rt, &ds, &dl, CascadeSvmParams::default());
        let _ = rt.wait(model.model); // must not panic
    }

    #[test]
    fn cores_recorded_for_simulator() {
        let (rt, _m, _ds, _dl) = fit_demo(20, 2);
        let trace = rt.trace();
        let fit_rec = trace.records.iter().find(|r| r.name == "csvm_fit").unwrap();
        assert_eq!(fit_rec.cores, 8);
    }
}
