//! Model selection: K-fold cross-validation (the paper evaluates every
//! algorithm "with an ensemble of runs, trained with K-fold (K=5)"),
//! plus generic [`cross_validate`] / [`grid_search`] helpers (the paper
//! tuned its CNN by "assessing numerous alternatives"; these utilities
//! do the same for any estimator).

use crate::metrics::ConfusionMatrix;
use linalg::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// K-fold splitter.
#[derive(Debug, Clone, Copy)]
pub struct KFold {
    /// Number of folds (paper: 5).
    pub k: usize,
    /// Shuffle sample order before splitting.
    pub shuffle: bool,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for KFold {
    fn default() -> Self {
        Self {
            k: 5,
            shuffle: true,
            seed: 0,
        }
    }
}

impl KFold {
    /// Produces `(train_idx, test_idx)` per fold over `n` samples.
    ///
    /// # Panics
    /// Panics unless `2 <= k <= n`.
    pub fn split(&self, n: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
        assert!(self.k >= 2, "k must be >= 2");
        assert!(self.k <= n, "k must not exceed the sample count");
        let mut order: Vec<usize> = (0..n).collect();
        if self.shuffle {
            let mut rng = StdRng::seed_from_u64(self.seed);
            order.shuffle(&mut rng);
        }
        // Fold sizes differ by at most one.
        let base = n / self.k;
        let extra = n % self.k;
        let mut folds = Vec::with_capacity(self.k);
        let mut start = 0;
        for f in 0..self.k {
            let size = base + usize::from(f < extra);
            let test: Vec<usize> = order[start..start + size].to_vec();
            let train: Vec<usize> = order[..start]
                .iter()
                .chain(&order[start + size..])
                .copied()
                .collect();
            folds.push((train, test));
            start += size;
        }
        folds
    }
}

/// Gathers `(x, y)` rows by index — the helper used to materialize each
/// fold before loading it into a ds-array.
pub fn take(x: &Matrix, y: &[u8], idx: &[usize]) -> (Matrix, Vec<u8>) {
    (x.take_rows(idx), idx.iter().map(|&i| y[i]).collect())
}

/// Cross-validates any estimator: `fit_predict(x_train, y_train,
/// x_test)` must return the test predictions. Returns one confusion
/// matrix per fold.
pub fn cross_validate<F>(
    x: &Matrix,
    y: &[u8],
    kf: &KFold,
    mut fit_predict: F,
) -> Vec<ConfusionMatrix>
where
    F: FnMut(&Matrix, &[u8], &Matrix) -> Vec<u8>,
{
    kf.split(x.rows())
        .into_iter()
        .map(|(tr, te)| {
            let (xtr, ytr) = take(x, y, &tr);
            let (xte, yte) = take(x, y, &te);
            let pred = fit_predict(&xtr, &ytr, &xte);
            ConfusionMatrix::from_labels(&yte, &pred)
        })
        .collect()
}

/// Result of a [`grid_search`].
#[derive(Debug, Clone)]
pub struct GridSearchResult<P> {
    /// The best-scoring parameter set.
    pub best: P,
    /// Its mean CV accuracy.
    pub best_score: f64,
    /// Every candidate with its mean CV accuracy, in input order.
    pub scores: Vec<(P, f64)>,
}

/// Exhaustive parameter search by cross-validated accuracy.
///
/// # Panics
/// Panics on an empty candidate list.
pub fn grid_search<P, F>(
    candidates: &[P],
    x: &Matrix,
    y: &[u8],
    kf: &KFold,
    fit_predict: F,
) -> GridSearchResult<P>
where
    P: Clone,
    F: Fn(&P, &Matrix, &[u8], &Matrix) -> Vec<u8>,
{
    assert!(
        !candidates.is_empty(),
        "grid search needs at least one candidate"
    );
    let scores: Vec<(P, f64)> = candidates
        .iter()
        .map(|p| {
            let folds = cross_validate(x, y, kf, |xtr, ytr, xte| fit_predict(p, xtr, ytr, xte));
            let pooled = folds
                .iter()
                .fold(ConfusionMatrix::default(), |acc, f| acc.merged(f));
            (p.clone(), pooled.accuracy())
        })
        .collect();
    let (best, best_score) = scores
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(p, s)| (p.clone(), *s))
        .expect("non-empty scores");
    GridSearchResult {
        best,
        best_score,
        scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn folds_partition_everything() {
        let kf = KFold {
            k: 5,
            shuffle: true,
            seed: 1,
        };
        let folds = kf.split(23);
        assert_eq!(folds.len(), 5);
        let mut all_test: Vec<usize> = folds.iter().flat_map(|(_, t)| t.clone()).collect();
        all_test.sort_unstable();
        assert_eq!(all_test, (0..23).collect::<Vec<_>>());
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 23);
            assert!(test.iter().all(|t| !train.contains(t)));
        }
    }

    #[test]
    fn unshuffled_folds_are_contiguous() {
        let kf = KFold {
            k: 2,
            shuffle: false,
            seed: 0,
        };
        let folds = kf.split(4);
        assert_eq!(folds[0].1, vec![0, 1]);
        assert_eq!(folds[1].1, vec![2, 3]);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = KFold {
            k: 3,
            shuffle: true,
            seed: 9,
        }
        .split(30);
        let b = KFold {
            k: 3,
            shuffle: true,
            seed: 9,
        }
        .split(30);
        assert_eq!(a, b);
        let c = KFold {
            k: 3,
            shuffle: true,
            seed: 10,
        }
        .split(30);
        assert_ne!(a, c);
    }

    #[test]
    fn take_gathers_rows_and_labels() {
        let x = Matrix::from_fn(4, 2, |r, _| r as f64);
        let y = vec![0, 1, 0, 1];
        let (xs, ys) = take(&x, &y, &[3, 0]);
        assert_eq!(xs.row(0), &[3.0, 3.0]);
        assert_eq!(ys, vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "k must not exceed")]
    fn rejects_more_folds_than_samples() {
        let _ = KFold {
            k: 10,
            shuffle: false,
            seed: 0,
        }
        .split(5);
    }

    #[test]
    fn cross_validate_counts_every_sample_once() {
        let x = Matrix::from_fn(20, 2, |r, _| r as f64);
        let y: Vec<u8> = (0..20).map(|i| (i % 2) as u8).collect();
        let kf = KFold {
            k: 4,
            shuffle: true,
            seed: 1,
        };
        // A majority-vote "estimator".
        let folds = cross_validate(&x, &y, &kf, |_xtr, ytr, xte| {
            let ones = ytr.iter().filter(|&&l| l == 1).count();
            let label = u8::from(ones * 2 > ytr.len());
            vec![label; xte.rows()]
        });
        assert_eq!(folds.len(), 4);
        let total: usize = folds.iter().map(|f| f.total()).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn grid_search_finds_discriminating_parameter() {
        use crate::svm::{fit_svc, SvcParams};
        use crate::testutil::blobs;
        let (x, y) = blobs(30, 2.0, 17);
        let kf = KFold {
            k: 3,
            shuffle: true,
            seed: 2,
        };
        // Gamma candidates spanning absurd to sensible.
        let candidates = [1e-6, 0.5, 1e4];
        let result = grid_search(&candidates, &x, &y, &kf, |&gamma, xtr, ytr, xte| {
            let params = SvcParams {
                kernel: linalg::Kernel::Rbf { gamma },
                ..Default::default()
            };
            fit_svc(xtr, ytr, &params).predict(xte)
        });
        assert_eq!(result.best, 0.5, "scores: {:?}", result.scores);
        assert!(result.best_score > 0.9);
        assert_eq!(result.scores.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn grid_search_rejects_empty() {
        let x = Matrix::zeros(4, 1);
        let y = vec![0, 1, 0, 1];
        let kf = KFold {
            k: 2,
            shuffle: false,
            seed: 0,
        };
        let _ = grid_search::<f64, _>(&[], &x, &y, &kf, |_, _, _, xte| vec![0; xte.rows()]);
    }

    proptest! {
        #[test]
        fn prop_fold_sizes_balanced(n in 4usize..200, k in 2usize..6) {
            prop_assume!(k <= n);
            let folds = KFold { k, shuffle: true, seed: 0 }.split(n);
            let sizes: Vec<usize> = folds.iter().map(|(_, t)| t.len()).collect();
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            prop_assert!(max - min <= 1);
            prop_assert_eq!(sizes.iter().sum::<usize>(), n);
        }
    }
}
