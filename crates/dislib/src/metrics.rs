//! Classification metrics: accuracy, the paper's normalized confusion
//! matrices (Table I), and precision/recall/F1 — the clinical
//! trade-off the paper's conclusions discuss (recall focus: minimizing
//! AF signals classified as normal).

/// Binary confusion counts with AF (= label 1) as the positive class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// AF predicted AF.
    pub tp: usize,
    /// Normal predicted AF.
    pub fp: usize,
    /// AF predicted Normal.
    pub fn_: usize,
    /// Normal predicted Normal.
    pub tn: usize,
}

impl ConfusionMatrix {
    /// Builds counts from ground-truth and predicted 0/1 labels.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn from_labels(y_true: &[u8], y_pred: &[u8]) -> Self {
        assert_eq!(y_true.len(), y_pred.len(), "label length mismatch");
        let mut cm = ConfusionMatrix::default();
        for (&t, &p) in y_true.iter().zip(y_pred) {
            match (t, p) {
                (1, 1) => cm.tp += 1,
                (0, 1) => cm.fp += 1,
                (1, 0) => cm.fn_ += 1,
                (0, 0) => cm.tn += 1,
                _ => panic!("labels must be 0/1"),
            }
        }
        cm
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / self.total() as f64
    }

    /// Precision on the AF class (minimizing false positives).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    /// Recall / sensitivity on the AF class (minimizing false
    /// negatives — the stroke-care priority in the paper's conclusions).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// F1 score (the CinC-2017 challenge metric).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }

    /// The paper's Table I presentation: fractions of the grand total,
    /// rows = true (AF, Normal), columns = predicted (AF, Normal).
    pub fn normalized(&self) -> [[f64; 2]; 2] {
        let n = self.total().max(1) as f64;
        [
            [self.tp as f64 / n, self.fn_ as f64 / n],
            [self.fp as f64 / n, self.tn as f64 / n],
        ]
    }

    /// Element-wise sum (for averaging across CV folds).
    pub fn merged(&self, other: &ConfusionMatrix) -> ConfusionMatrix {
        ConfusionMatrix {
            tp: self.tp + other.tp,
            fp: self.fp + other.fp,
            fn_: self.fn_ + other.fn_,
            tn: self.tn + other.tn,
        }
    }

    /// Formats the matrix like the paper's Table I cells.
    pub fn to_table(&self) -> String {
        let n = self.normalized();
        format!(
            "          Pred AF   Pred N\n  AF      {:.3}     {:.3}\n  N       {:.3}     {:.3}",
            n[0][0], n[0][1], n[1][0], n[1][1]
        )
    }
}

/// Fraction of matching labels.
pub fn accuracy(y_true: &[u8], y_pred: &[u8]) -> f64 {
    ConfusionMatrix::from_labels(y_true, y_pred).accuracy()
}

/// One operating point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// False-positive rate at this threshold.
    pub fpr: f64,
    /// True-positive rate (recall) at this threshold.
    pub tpr: f64,
    /// Score threshold (predict AF when `score >= threshold`).
    pub threshold: f64,
}

/// ROC curve from AF scores (higher = more AF-like), one point per
/// distinct threshold, ordered from strictest to most permissive.
///
/// # Panics
/// Panics if lengths mismatch or either class is absent.
pub fn roc_curve(y_true: &[u8], scores: &[f64]) -> Vec<RocPoint> {
    assert_eq!(y_true.len(), scores.len(), "label/score length mismatch");
    let pos = y_true.iter().filter(|&&l| l == 1).count();
    let neg = y_true.len() - pos;
    assert!(pos > 0 && neg > 0, "ROC needs both classes");

    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));

    let mut points = Vec::new();
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < order.len() {
        let thr = scores[order[i]];
        // Consume all samples tied at this threshold.
        while i < order.len() && scores[order[i]] == thr {
            if y_true[order[i]] == 1 {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(RocPoint {
            fpr: fp as f64 / neg as f64,
            tpr: tp as f64 / pos as f64,
            threshold: thr,
        });
    }
    points
}

/// Area under the ROC curve (trapezoidal rule over [`roc_curve`]).
pub fn roc_auc(y_true: &[u8], scores: &[f64]) -> f64 {
    let pts = roc_curve(y_true, scores);
    let mut auc = 0.0;
    let (mut prev_fpr, mut prev_tpr) = (0.0, 0.0);
    for p in pts {
        auc += (p.fpr - prev_fpr) * (p.tpr + prev_tpr) / 2.0;
        prev_fpr = p.fpr;
        prev_tpr = p.tpr;
    }
    auc
}

/// Smallest-FPR threshold reaching at least `target_recall` — the
/// recall-focused operating point the paper's conclusions recommend for
/// stroke care ("it is preferable for a classifier to predict a normal
/// signal as AF ... rather than predicting AF as a normal signal").
/// Returns `None` if no threshold reaches the target.
pub fn threshold_for_recall(y_true: &[u8], scores: &[f64], target_recall: f64) -> Option<f64> {
    roc_curve(y_true, scores)
        .into_iter()
        .find(|p| p.tpr >= target_recall)
        .map(|p| p.threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_prediction() {
        let y = vec![1, 0, 1, 0];
        let cm = ConfusionMatrix::from_labels(&y, &y);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.precision(), 1.0);
        assert_eq!(cm.recall(), 1.0);
        assert_eq!(cm.f1(), 1.0);
    }

    #[test]
    fn known_counts() {
        let y_true = vec![1, 1, 1, 0, 0, 0];
        let y_pred = vec![1, 1, 0, 1, 0, 0];
        let cm = ConfusionMatrix::from_labels(&y_true, &y_pred);
        assert_eq!((cm.tp, cm.fn_, cm.fp, cm.tn), (2, 1, 1, 2));
        assert!((cm.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        assert!((cm.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.recall() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_sums_to_one() {
        let cm = ConfusionMatrix {
            tp: 762,
            fn_: 251,
            fp: 251,
            tn: 742,
        };
        let n = cm.normalized();
        let s: f64 = n.iter().flatten().sum();
        assert!((s - 1.0).abs() < 1e-12);
        // Paper Table Ia values (CSVM): 0.379 / 0.125 / 0.125 / 0.369.
        assert!((n[0][0] - 0.379).abs() < 5e-3);
        assert!((cm.accuracy() - 0.749).abs() < 5e-3);
    }

    #[test]
    fn degenerate_all_positive_prediction() {
        // The paper's KNN regime: predicts nearly everything as AF.
        let y_true = vec![1, 1, 0, 0];
        let y_pred = vec![1, 1, 1, 1];
        let cm = ConfusionMatrix::from_labels(&y_true, &y_pred);
        assert_eq!(cm.recall(), 1.0);
        assert_eq!(cm.precision(), 0.5);
        assert_eq!(cm.accuracy(), 0.5);
    }

    #[test]
    fn merged_adds_counts() {
        let a = ConfusionMatrix {
            tp: 1,
            fp: 2,
            fn_: 3,
            tn: 4,
        };
        let b = ConfusionMatrix {
            tp: 10,
            fp: 20,
            fn_: 30,
            tn: 40,
        };
        let m = a.merged(&b);
        assert_eq!((m.tp, m.fp, m.fn_, m.tn), (11, 22, 33, 44));
    }

    #[test]
    fn empty_metrics_are_zero() {
        let cm = ConfusionMatrix::default();
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.precision(), 0.0);
        assert_eq!(cm.recall(), 0.0);
        assert_eq!(cm.f1(), 0.0);
    }

    #[test]
    fn roc_perfect_separation() {
        let y = vec![0, 0, 1, 1];
        let scores = vec![0.1, 0.2, 0.8, 0.9];
        assert!((roc_auc(&y, &scores) - 1.0).abs() < 1e-12);
        // Reversed scores: AUC 0.
        let rev: Vec<f64> = scores.iter().map(|s| -s).collect();
        assert!(roc_auc(&y, &rev).abs() < 1e-12);
    }

    #[test]
    fn roc_chance_level() {
        // Constant scores: a single tie-point, AUC = 0.5.
        let y = vec![0, 1, 0, 1];
        let scores = vec![0.5; 4];
        assert!((roc_auc(&y, &scores) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn roc_curve_monotone() {
        let y = vec![0, 1, 0, 1, 1, 0, 1, 0];
        let scores = vec![0.2, 0.9, 0.4, 0.6, 0.55, 0.5, 0.3, 0.1];
        let pts = roc_curve(&y, &scores);
        for w in pts.windows(2) {
            assert!(w[1].fpr >= w[0].fpr - 1e-12);
            assert!(w[1].tpr >= w[0].tpr - 1e-12);
            assert!(w[1].threshold <= w[0].threshold);
        }
        assert!((pts.last().unwrap().tpr - 1.0).abs() < 1e-12);
        assert!((pts.last().unwrap().fpr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recall_threshold_reaches_target() {
        let y = vec![0, 1, 0, 1, 1, 0];
        let scores = vec![0.1, 0.9, 0.3, 0.55, 0.45, 0.6];
        let thr = threshold_for_recall(&y, &scores, 1.0).unwrap();
        let preds: Vec<u8> = scores.iter().map(|&s| u8::from(s >= thr)).collect();
        let cm = ConfusionMatrix::from_labels(&y, &preds);
        assert_eq!(cm.recall(), 1.0);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn roc_rejects_single_class() {
        let _ = roc_curve(&[1, 1], &[0.1, 0.2]);
    }

    proptest! {
        #[test]
        fn prop_roc_auc_in_unit_interval(
            labels in proptest::collection::vec(0u8..2, 4..40),
            scores in proptest::collection::vec(0.0f64..1.0, 40),
        ) {
            prop_assume!(labels.contains(&0) && labels.contains(&1));
            let scores = &scores[..labels.len()];
            let auc = roc_auc(&labels, scores);
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&auc));
        }

        #[test]
        fn prop_accuracy_in_unit_interval(
            labels in proptest::collection::vec(0u8..2, 1..50),
            preds_seed in 0u64..100,
        ) {
            let preds: Vec<u8> = labels
                .iter()
                .enumerate()
                .map(|(i, &l)| if (i as u64 + preds_seed).is_multiple_of(3) { 1 - l } else { l })
                .collect();
            let acc = accuracy(&labels, &preds);
            prop_assert!((0.0..=1.0).contains(&acc));
        }

        #[test]
        fn prop_confusion_total_matches(
            labels in proptest::collection::vec(0u8..2, 1..50),
        ) {
            let preds: Vec<u8> = labels.iter().map(|&l| 1 - l).collect();
            let cm = ConfusionMatrix::from_labels(&labels, &preds);
            prop_assert_eq!(cm.total(), labels.len());
            prop_assert_eq!(cm.accuracy(), 0.0);
        }
    }
}
