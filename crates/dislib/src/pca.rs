//! Principal Component Analysis by the covariance method (paper
//! §III-B4).
//!
//! Faithful to the dislib implementation the paper describes: "centering
//! the features and estimating the covariance matrix are computed in two
//! successive map-reduce phases, partitioning the samples only by row
//! blocks. Hence, an unpartitioned covariance matrix of shape
//! `(n_features, n_features)` is obtained. This matrix is processed by a
//! single task which computes the eigendecomposition".
//!
//! Task kinds: `ds_colsum`/`ds_colsum_reduce` (phase 1), `ds_center`,
//! `ds_gram`/`ds_gram_reduce` (phase 2), `pca_eigh` (single task),
//! `ds_matmul` (projection).

use dsarray::DsArray;
use linalg::{eigh, Matrix};
use taskrt::{Handle, Runtime};

/// How many components to keep.
#[derive(Debug, Clone, Copy)]
pub enum Components {
    /// Fixed count.
    Count(usize),
    /// Smallest count whose cumulative explained variance reaches the
    /// given fraction (paper: 0.95, keeping "95 % of the information").
    Variance(f64),
}

/// A fitted PCA transform.
pub struct Pca {
    /// Projection matrix, `n_features x k` (eigenvectors as columns,
    /// sorted by descending eigenvalue).
    pub components: Handle<Matrix>,
    /// Explained variance of each kept component (descending).
    pub explained_variance: Handle<Vec<f64>>,
    /// Column means used for centering.
    pub mean: Handle<Vec<f64>>,
}

impl Pca {
    /// Fits PCA on a blocked dataset.
    pub fn fit(rt: &Runtime, x: &DsArray, keep: Components) -> Pca {
        let (n, _d) = x.shape();
        assert!(n >= 2, "PCA needs at least two samples");

        // Phase 1 (map-reduce): column means.
        let sums = x.col_sums(rt);
        let mean = rt.task("pca_mean").run1(sums, move |s: &Vec<f64>| {
            s.iter().map(|v| v / n as f64).collect::<Vec<f64>>()
        });

        // Center, then phase 2 (map-reduce): X_c^T X_c.
        let centered = x.sub_row_vector(rt, mean);
        let gram = centered.gram(rt);
        // The gram handle has no other consumer, so the INOUT scale
        // steals it and rescales in place — no covariance-sized clone.
        let cov = rt
            .task("pca_cov_scale")
            .run1_inout(gram, move |g: &mut Matrix| {
                g.scale(1.0 / (n as f64 - 1.0));
            });

        // Single eigendecomposition task (as in dislib).
        let eig = rt.task("pca_eigh").run1(cov, move |c: &Matrix| {
            let res = eigh(c);
            let d = res.values.len();
            // Descending order.
            let values: Vec<f64> = res.values.iter().rev().copied().collect();
            let vectors = Matrix::from_fn(d, d, |r, col| res.vectors.get(r, d - 1 - col));
            let k = match keep {
                Components::Count(k) => k.clamp(1, d),
                Components::Variance(frac) => {
                    let total: f64 = values.iter().map(|v| v.max(0.0)).sum();
                    let mut acc = 0.0;
                    let mut k = d;
                    for (i, v) in values.iter().enumerate() {
                        acc += v.max(0.0);
                        if total > 0.0 && acc / total >= frac {
                            k = i + 1;
                            break;
                        }
                    }
                    k
                }
            };
            let comp = vectors.slice_cols(0, k);
            let var = values[..k].to_vec();
            (comp, var)
        });
        let (components, explained_variance) = rt.split_pair(eig);
        Pca {
            components,
            explained_variance,
            mean,
        }
    }

    /// Projects a blocked dataset onto the kept components, returning a
    /// new (row-banded) ds-array of shape `n x k`.
    pub fn transform(&self, rt: &Runtime, x: &DsArray) -> DsArray {
        let centered = x.sub_row_vector(rt, self.mean);
        centered.matmul_dense(rt, self.components)
    }

    /// Number of kept components (synchronizes on the fit).
    pub fn n_components(&self, rt: &Runtime) -> usize {
        rt.peek(self.explained_variance).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::randn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Data with variance concentrated along one direction.
    fn anisotropic(n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let big = randn(&mut rng) * 10.0;
                let small = randn(&mut rng) * 0.5;
                // Principal axis = (1, 1)/sqrt(2), secondary = (1, -1).
                vec![
                    (big + small) / 2f64.sqrt() + 3.0,
                    (big - small) / 2f64.sqrt() - 1.0,
                    randn(&mut rng) * 0.1,
                ]
            })
            .collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn finds_dominant_direction() {
        let rt = Runtime::new();
        let x = anisotropic(200, 1);
        let ds = DsArray::from_matrix(&rt, &x, 50, 3);
        let pca = Pca::fit(&rt, &ds, Components::Count(1));
        let comp = rt.peek(pca.components);
        assert_eq!(comp.shape(), (3, 1));
        // First component should be close to (1,1,0)/sqrt(2) up to sign.
        let c = comp.col(0);
        let target = 1.0 / 2f64.sqrt();
        assert!((c[0].abs() - target).abs() < 0.05, "c={c:?}");
        assert!((c[1].abs() - target).abs() < 0.05);
        assert!(c[2].abs() < 0.1);
    }

    #[test]
    fn variance_threshold_keeps_few_components() {
        let rt = Runtime::new();
        let x = anisotropic(200, 2);
        let ds = DsArray::from_matrix(&rt, &x, 64, 3);
        let pca = Pca::fit(&rt, &ds, Components::Variance(0.95));
        // One direction carries ~99% of the variance.
        assert_eq!(pca.n_components(&rt), 1);
        let pca_all = Pca::fit(&rt, &ds, Components::Variance(0.999999));
        assert!(pca_all.n_components(&rt) >= 2);
    }

    #[test]
    fn transform_shape_and_centering() {
        let rt = Runtime::new();
        let x = anisotropic(120, 3);
        let ds = DsArray::from_matrix(&rt, &x, 30, 3);
        let pca = Pca::fit(&rt, &ds, Components::Count(2));
        let projected = pca.transform(&rt, &ds);
        assert_eq!(projected.shape(), (120, 2));
        let p = projected.collect(&rt);
        // Projections of centered data have ~zero mean.
        for c in 0..2 {
            let mean: f64 = p.col(c).iter().sum::<f64>() / 120.0;
            assert!(mean.abs() < 1e-9, "mean={mean}");
        }
    }

    #[test]
    fn explained_variance_descending_and_positive() {
        let rt = Runtime::new();
        let x = anisotropic(100, 4);
        let ds = DsArray::from_matrix(&rt, &x, 25, 3);
        let pca = Pca::fit(&rt, &ds, Components::Count(3));
        let ev = rt.peek(pca.explained_variance);
        for w in ev.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(ev[0] > 0.0);
    }

    #[test]
    fn projection_preserves_pairwise_structure() {
        // With all components kept, pairwise distances are preserved
        // (orthogonal transform of centered data).
        let rt = Runtime::new();
        let x = anisotropic(40, 5);
        let ds = DsArray::from_matrix(&rt, &x, 10, 3);
        let pca = Pca::fit(&rt, &ds, Components::Count(3));
        let p = pca.transform(&rt, &ds).collect(&rt);
        for (i, j) in [(0usize, 1usize), (5, 20), (13, 39)] {
            let d_orig = linalg::euclidean_sq(x.row(i), x.row(j));
            let d_proj = linalg::euclidean_sq(p.row(i), p.row(j));
            assert!(
                (d_orig - d_proj).abs() < 1e-6 * d_orig.max(1.0),
                "distance changed: {d_orig} vs {d_proj}"
            );
        }
    }

    #[test]
    fn single_eigh_task_in_trace() {
        let rt = Runtime::new();
        let x = anisotropic(60, 6);
        let ds = DsArray::from_matrix(&rt, &x, 15, 2);
        let _pca = Pca::fit(&rt, &ds, Components::Count(2));
        let hist = rt.trace().task_histogram();
        assert_eq!(
            hist["pca_eigh"], 1,
            "paper: eigendecomposition is a single task"
        );
        assert!(hist["ds_gram"] >= 4);
    }

    #[test]
    fn fused_pipeline_is_bit_identical_and_dispatches_fewer_tasks() {
        // The whole PCA pipeline under the graph-rewrite optimizer:
        // values must match the eager runtime bit for bit, while the
        // number of dispatched tasks drops by at least 30% (the
        // acceptance bar for the fused PCA schedule).
        use taskrt::RuntimeConfig;
        let x = anisotropic(256, 8);
        let run = |fuse: bool| {
            let rt = Runtime::with_config(RuntimeConfig {
                fuse,
                ..RuntimeConfig::default()
            });
            let ds = DsArray::from_matrix_owned(&rt, x.clone(), 32, 3);
            let pca = Pca::fit(&rt, &ds, Components::Count(2));
            let comp = (*rt.peek(pca.components)).clone();
            let proj = pca.transform(&rt, &ds).collect(&rt);
            rt.barrier();
            (comp, proj, rt.trace().user_task_count())
        };
        let (comp_e, proj_e, tasks_eager) = run(false);
        let (comp_f, proj_f, tasks_fused) = run(true);
        assert_eq!(comp_f, comp_e, "components must be bit-identical");
        assert_eq!(proj_f, proj_e, "projection must be bit-identical");
        assert!(
            (tasks_fused as f64) <= 0.7 * tasks_eager as f64,
            "fused PCA dispatched {tasks_fused} of {tasks_eager} tasks (> 70%)"
        );
    }
}
