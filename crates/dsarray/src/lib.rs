//! # dsarray — a blocked, task-distributed 2-D array (dislib `ds-array`)
//!
//! The paper's dislib library stores datasets as **ds-arrays**: 2-D
//! arrays partitioned into regular blocks "that can be operated as a
//! regular Python object", where every block operation is a PyCOMPSs
//! task (§II-B). This crate is the Rust equivalent built on
//! [`taskrt`]: a [`DsArray`] holds a grid of [`Handle<Matrix>`] blocks,
//! and each method submits the same task pattern dislib would —
//! the parallelism available to an estimator is therefore bounded by the
//! number of row blocks, exactly the property the paper's evaluation
//! leans on ("the maximum amount of parallelism of the fitting process is
//! thus limited by the number of row blocks").
//!
//! ```
//! use taskrt::Runtime;
//! use linalg::Matrix;
//! use dsarray::DsArray;
//!
//! let rt = Runtime::new();
//! let x = Matrix::from_fn(100, 8, |r, c| (r * 8 + c) as f64);
//! let ds = DsArray::from_matrix(&rt, &x, 25, 4); // 4x2 block grid
//! assert_eq!(ds.n_row_blocks(), 4);
//! let back = ds.collect(&rt);
//! assert_eq!(back, x);
//! ```

use linalg::Matrix;
use std::sync::Arc;
use taskrt::{Handle, RetryPolicy, Runtime};

/// Pairwise tree reduction over a list of handles — the cascade pattern
/// dislib uses for every reduction phase (CSVM merges "two by two").
///
/// Returns the single reduced handle. Submits `len - 1` tasks named
/// `name`.
///
/// Merge tasks are pure (`Fn`, borrowed inputs), so each declares
/// [`taskrt::OnFailure::Retry`] with the default [`RetryPolicy`]: a
/// transient fault in one merge re-runs just that merge instead of
/// failing the whole reduction — COMPSs' task resubmission, scoped to
/// the pattern where a single lost task would waste the widest subtree.
///
/// # Panics
/// Panics on an empty input.
pub fn tree_reduce<T>(
    rt: &Runtime,
    name: &str,
    items: &[Handle<T>],
    f: impl Fn(&T, &T) -> T + Send + Sync + 'static,
) -> Handle<T>
where
    T: taskrt::Payload,
{
    assert!(!items.is_empty(), "tree_reduce on empty input");
    let f = Arc::new(f);
    let mut level: Vec<Handle<T>> = items.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.chunks(2);
        for pair in &mut it {
            if pair.len() == 2 {
                let f = f.clone();
                next.push(rt.task(name).retry(RetryPolicy::default()).run2(
                    pair[0],
                    pair[1],
                    move |a, b| f(a, b),
                ));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    level[0]
}

/// In-place variant of [`tree_reduce`]: the left operand of every merge
/// is passed with PyCOMPSs `direction=INOUT` semantics
/// ([`taskrt::TaskBuilder::run2_inout`]), so interior reduction nodes
/// mutate their left input instead of cloning it. With single-consumer
/// intermediates (always true inside the cascade) every merge steals its
/// accumulator and the reduction allocates nothing beyond the leaves.
///
/// Unlike [`tree_reduce`], merges here stay on the default
/// [`taskrt::OnFailure::Fail`] policy: a retryable task gives up the
/// INOUT buffer steal (the runtime must keep inputs alive for re-runs),
/// which would forfeit exactly the zero-copy property this variant
/// exists for. Callers that prefer resilience over allocation can use
/// [`tree_reduce`].
///
/// # Panics
/// Panics on an empty input.
pub fn tree_reduce_inout<T>(
    rt: &Runtime,
    name: &str,
    items: &[Handle<T>],
    f: impl Fn(&mut T, &T) + Send + Sync + 'static,
) -> Handle<T>
where
    T: taskrt::Payload + Clone,
{
    assert!(!items.is_empty(), "tree_reduce on empty input");
    let f = Arc::new(f);
    let mut level: Vec<Handle<T>> = items.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                let f = f.clone();
                next.push(
                    rt.task(name)
                        .run2_inout(pair[0], pair[1], move |a, b| f(a, b)),
                );
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    level[0]
}

/// A dense 2-D array partitioned into a regular grid of blocks, each a
/// [`Matrix`] living in the task runtime's data store.
#[derive(Clone)]
pub struct DsArray {
    rows: usize,
    cols: usize,
    rb_size: usize,
    cb_size: usize,
    /// `grid[rb][cb]` — row-major grid of block handles.
    grid: Vec<Vec<Handle<Matrix>>>,
}

impl DsArray {
    /// Partitions `m` into `rb_size x cb_size` blocks, one `ds_load`
    /// task per block (the paper: loading PhysioNet data into ds-arrays
    /// generated 631 tasks with 500×500 blocks).
    ///
    /// # Panics
    /// Panics if `m` is empty or the block sizes are zero.
    pub fn from_matrix(rt: &Runtime, m: &Matrix, rb_size: usize, cb_size: usize) -> Self {
        assert!(
            m.rows() > 0 && m.cols() > 0,
            "cannot distribute an empty matrix"
        );
        assert!(rb_size > 0 && cb_size > 0, "block sizes must be positive");
        let (rows, cols) = m.shape();
        let src = rt.put(m.clone());
        let n_rb = rows.div_ceil(rb_size);
        let n_cb = cols.div_ceil(cb_size);
        let mut grid = Vec::with_capacity(n_rb);
        for rb in 0..n_rb {
            let mut row = Vec::with_capacity(n_cb);
            let (r0, r1) = (rb * rb_size, ((rb + 1) * rb_size).min(rows));
            for cb in 0..n_cb {
                let (c0, c1) = (cb * cb_size, ((cb + 1) * cb_size).min(cols));
                row.push(rt.task("ds_load").run1(src, move |m: &Matrix| {
                    m.slice_rows(r0, r1).slice_cols(c0, c1)
                }));
            }
            grid.push(row);
        }
        DsArray {
            rows,
            cols,
            rb_size,
            cb_size,
            grid,
        }
    }

    /// Consuming variant of [`DsArray::from_matrix`]: takes ownership of
    /// `m`, partitions it **driver-side** (no `ds_load` tasks, no
    /// retained full copy in the data store), and recycles the source
    /// buffer through the [`linalg::pool`] once the blocks are cut.
    /// Block contents are identical to `from_matrix`'s.
    ///
    /// # Panics
    /// Panics if `m` is empty or the block sizes are zero.
    pub fn from_matrix_owned(rt: &Runtime, m: Matrix, rb_size: usize, cb_size: usize) -> Self {
        assert!(
            m.rows() > 0 && m.cols() > 0,
            "cannot distribute an empty matrix"
        );
        assert!(rb_size > 0 && cb_size > 0, "block sizes must be positive");
        let (rows, cols) = m.shape();
        let n_rb = rows.div_ceil(rb_size);
        let n_cb = cols.div_ceil(cb_size);
        let mut grid = Vec::with_capacity(n_rb);
        for rb in 0..n_rb {
            let mut row = Vec::with_capacity(n_cb);
            let (r0, r1) = (rb * rb_size, ((rb + 1) * rb_size).min(rows));
            for cb in 0..n_cb {
                let (c0, c1) = (cb * cb_size, ((cb + 1) * cb_size).min(cols));
                let block = if n_cb == 1 {
                    m.slice_rows(r0, r1)
                } else {
                    m.slice_rows(r0, r1).slice_cols(c0, c1)
                };
                row.push(rt.put(block));
            }
            grid.push(row);
        }
        m.into_pool();
        DsArray {
            rows,
            cols,
            rb_size,
            cb_size,
            grid,
        }
    }

    /// Builds a ds-array from pre-existing row-band handles (each a
    /// `rows_i x cols` matrix with a single column block).
    pub fn from_row_bands(
        rt: &Runtime,
        bands: Vec<Handle<Matrix>>,
        band_rows: &[usize],
        cols: usize,
    ) -> Self {
        assert_eq!(bands.len(), band_rows.len());
        let _ = rt;
        let rows = band_rows.iter().sum();
        let rb_size = band_rows.iter().copied().max().unwrap_or(1);
        DsArray {
            rows,
            cols,
            rb_size,
            cb_size: cols,
            grid: bands.into_iter().map(|b| vec![b]).collect(),
        }
    }

    /// Total shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Configured block shape `(rb_size, cb_size)`.
    pub fn block_shape(&self) -> (usize, usize) {
        (self.rb_size, self.cb_size)
    }

    /// Number of row blocks — the parallelism bound of dislib estimators.
    pub fn n_row_blocks(&self) -> usize {
        self.grid.len()
    }

    /// Number of column blocks.
    pub fn n_col_blocks(&self) -> usize {
        self.grid.first().map_or(0, Vec::len)
    }

    /// Number of rows in row block `rb`.
    pub fn rows_in_band(&self, rb: usize) -> usize {
        let r0 = rb * self.rb_size;
        (self.rows - r0).min(self.rb_size)
    }

    /// Raw block handle.
    pub fn block(&self, rb: usize, cb: usize) -> Handle<Matrix> {
        self.grid[rb][cb]
    }

    /// The full row band `rb` as a single matrix handle; a
    /// `ds_merge_band` task hstacks the band's blocks (no-op pass-through
    /// when the array has a single column block).
    pub fn row_band(&self, rt: &Runtime, rb: usize) -> Handle<Matrix> {
        if self.n_col_blocks() == 1 {
            return self.grid[rb][0];
        }
        rt.task("ds_merge_band").run_many(&self.grid[rb], |blocks| {
            let rows = blocks[0].rows();
            let cols: usize = blocks.iter().map(|b| b.cols()).sum();
            let mut out = Matrix::zeros(rows, cols);
            let mut c0 = 0;
            for b in blocks {
                for r in 0..rows {
                    out.row_mut(r)[c0..c0 + b.cols()].copy_from_slice(b.row(r));
                }
                c0 += b.cols();
            }
            out
        })
    }

    /// All row bands (see [`Self::row_band`]).
    pub fn row_bands(&self, rt: &Runtime) -> Vec<Handle<Matrix>> {
        (0..self.n_row_blocks())
            .map(|rb| self.row_band(rt, rb))
            .collect()
    }

    /// Gathers the whole array into a single matrix **handle** without
    /// synchronizing: the `ds_gather` task stays in the task graph, so
    /// downstream tasks can consume the gathered matrix — or, with
    /// fusion enabled, the optimizer can drop it — before the driver
    /// ever blocks. The task is marked discardable: a gather whose
    /// result is never read and never reaches a barrier is pure
    /// data-plane traffic, and the fusion optimizer's dead-task pass is
    /// allowed to elide it.
    pub fn collect_handle(&self, rt: &Runtime) -> Handle<Matrix> {
        let blocks: Vec<Handle<Matrix>> = self.grid.iter().flatten().copied().collect();
        let (rows, cols) = (self.rows, self.cols);
        let (rb_size, cb_size) = (self.rb_size, self.cb_size);
        let n_cb = self.n_col_blocks();
        rt.task("ds_gather")
            .discardable()
            .run_many(&blocks, move |bs| {
                let mut out = Matrix::from_pool(rows, cols);
                for (i, b) in bs.iter().enumerate() {
                    let (r0, c0) = ((i / n_cb) * rb_size, (i % n_cb) * cb_size);
                    for r in 0..b.rows() {
                        out.row_mut(r0 + r)[c0..c0 + b.cols()].copy_from_slice(b.row(r));
                    }
                }
                out
            })
    }

    /// Gathers the whole array back into one local matrix (synchronizes).
    ///
    /// One `ds_gather` task ([`Self::collect_handle`]) copies every
    /// block straight into a single preallocated `rows x cols` matrix —
    /// the tree of `vstack` intermediates (each copying the full prefix
    /// again) is gone, so gathering moves each element exactly once.
    pub fn collect(&self, rt: &Runtime) -> Matrix {
        (*rt.wait(self.collect_handle(rt))).clone()
    }

    /// Re-partitions the array to a new block shape without a driver
    /// round trip. `collect` followed by `from_matrix` forces a full
    /// synchronization (gather → driver → scatter); `reblock` keeps the
    /// exchange inside the task graph. When the target shape equals the
    /// current one the gather/scatter pair collapses completely — the
    /// existing block handles are reused and zero tasks are submitted.
    /// Otherwise one lazy `ds_gather` feeds a `ds_reblock` slice task
    /// per new block, and the driver never blocks.
    ///
    /// # Panics
    /// Panics if either block size is zero.
    pub fn reblock(&self, rt: &Runtime, rb_size: usize, cb_size: usize) -> DsArray {
        assert!(rb_size > 0 && cb_size > 0, "block sizes must be positive");
        if rb_size == self.rb_size && cb_size == self.cb_size {
            return self.clone();
        }
        let src = self.collect_handle(rt);
        let (rows, cols) = (self.rows, self.cols);
        let n_rb = rows.div_ceil(rb_size);
        let n_cb = cols.div_ceil(cb_size);
        let mut grid = Vec::with_capacity(n_rb);
        for rb in 0..n_rb {
            let mut row = Vec::with_capacity(n_cb);
            let (r0, r1) = (rb * rb_size, ((rb + 1) * rb_size).min(rows));
            for cb in 0..n_cb {
                let (c0, c1) = (cb * cb_size, ((cb + 1) * cb_size).min(cols));
                row.push(rt.task("ds_reblock").run1(src, move |m: &Matrix| {
                    m.slice_rows(r0, r1).slice_cols(c0, c1)
                }));
            }
            grid.push(row);
        }
        DsArray {
            rows,
            cols,
            rb_size,
            cb_size,
            grid,
        }
    }

    /// Applies `f` block-wise, producing a new ds-array with the same
    /// partitioning. `f` must preserve block shape.
    pub fn map_blocks(
        &self,
        rt: &Runtime,
        name: &str,
        f: impl Fn(&Matrix) -> Matrix + Send + Sync + 'static,
    ) -> DsArray {
        let f = Arc::new(f);
        let grid = self
            .grid
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&b| {
                        let f = f.clone();
                        rt.task(name).run1(b, move |m| {
                            let out = f(m);
                            assert_eq!(out.shape(), m.shape(), "map_blocks must preserve shape");
                            out
                        })
                    })
                    .collect()
            })
            .collect();
        DsArray { grid, ..*self }
    }

    /// Consuming, in-place variant of [`DsArray::map_blocks`]: every
    /// block is submitted with `direction=INOUT`, so when this array is
    /// the block's only consumer the mutation happens directly on the
    /// stored matrix with zero copies. `f` must preserve block shape.
    pub fn map_blocks_inplace(
        self,
        rt: &Runtime,
        name: &str,
        f: impl Fn(&mut Matrix) + Send + Sync + 'static,
    ) -> DsArray {
        let f = Arc::new(f);
        let grid = self
            .grid
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&b| {
                        let f = f.clone();
                        rt.task(name).run1_inout(b, move |m: &mut Matrix| {
                            let shape = m.shape();
                            f(m);
                            assert_eq!(m.shape(), shape, "map_blocks_inplace must preserve shape");
                        })
                    })
                    .collect()
            })
            .collect();
        DsArray { grid, ..self }
    }

    /// Declares the driver done with every block of this array: on a
    /// streaming runtime ([`taskrt::StreamConfig`]) each block's table
    /// slot is recycled once every already-submitted reader has
    /// consumed it (see [`Runtime::release`]); a no-op otherwise.
    ///
    /// Call after the last pipeline stage *reading* these blocks has
    /// been submitted — a driver loop producing many array generations
    /// (`map_blocks` → release → repeat) then keeps a bounded
    /// data-table footprint instead of one live block set per
    /// generation. Reading a released block afterwards fails with the
    /// runtime's named `"stale handle"` error.
    pub fn release(self, rt: &Runtime) {
        for row in self.grid {
            for h in row {
                rt.release(h);
            }
        }
    }

    /// Per-column sums via one partial task per block followed by a tree
    /// reduction (dislib's first PCA map-reduce phase).
    pub fn col_sums(&self, rt: &Runtime) -> Handle<Vec<f64>> {
        // Partial sums per block, padded into full-width vectors so the
        // reduction is uniform.
        let cols = self.cols;
        let cb_size = self.cb_size;
        let mut partials = Vec::new();
        for row in &self.grid {
            for (cb, &b) in row.iter().enumerate() {
                let c0 = cb * cb_size;
                // Pure partial producers retry on transient faults; the
                // INOUT reduction below keeps its steal (see
                // `tree_reduce_inout`).
                partials.push(rt.task("ds_colsum").retry(RetryPolicy::default()).run1(
                    b,
                    move |m: &Matrix| {
                        let mut v = vec![0.0; cols];
                        for r in 0..m.rows() {
                            for (j, &x) in m.row(r).iter().enumerate() {
                                v[c0 + j] += x;
                            }
                        }
                        v
                    },
                ));
            }
        }
        tree_reduce_inout(rt, "ds_colsum_reduce", &partials, |a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        })
    }

    /// Gram matrix `X^T X` via one `ds_gram` task per row band plus a
    /// tree reduction (dislib's second PCA map-reduce phase; the result
    /// is unpartitioned, as in the paper).
    pub fn gram(&self, rt: &Runtime) -> Handle<Matrix> {
        let bands = self.row_bands(rt);
        let partials: Vec<Handle<Matrix>> = bands
            .into_iter()
            .map(|band| {
                rt.task("ds_gram")
                    .retry(RetryPolicy::default())
                    .run1(band, |m: &Matrix| m.t_matmul(m))
            })
            .collect();
        tree_reduce_inout(rt, "ds_gram_reduce", &partials, |a, b| a.add_assign(b))
    }

    /// Multiplies every row band by a replicated dense matrix `w`
    /// (`cols x k`), producing a new single-column-block ds-array — the
    /// projection step of PCA (`X @ components`).
    pub fn matmul_dense(&self, rt: &Runtime, w: Handle<Matrix>) -> DsArray {
        let bands = self.row_bands(rt);
        let new_bands: Vec<Handle<Matrix>> = bands
            .into_iter()
            .map(|band| {
                rt.task("ds_matmul")
                    .run2(band, w, |m: &Matrix, w: &Matrix| m.matmul(w))
            })
            .collect();
        let band_rows: Vec<usize> = (0..self.n_row_blocks())
            .map(|rb| self.rows_in_band(rb))
            .collect();
        // Column count of the result is unknown until w resolves; carry
        // it lazily by peeking — acceptable because `w` is usually tiny
        // and resolved. To stay non-blocking we read the cols from the
        // first produced band at collect time; here we record `k` as the
        // declared width of `w` if available.
        let k = rt.peek(w).cols();
        DsArray::from_row_bands(rt, new_bands, &band_rows, k)
    }

    /// Subtracts a row vector from every row (column centering), block
    /// aligned — used by PCA and StandardScaler.
    pub fn sub_row_vector(&self, rt: &Runtime, v: Handle<Vec<f64>>) -> DsArray {
        let cb_size = self.cb_size;
        let grid = self
            .grid
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(cb, &b)| {
                        let c0 = cb * cb_size;
                        rt.task("ds_center")
                            .run2(b, v, move |m: &Matrix, v: &Vec<f64>| {
                                let mut out = m.clone();
                                for r in 0..out.rows() {
                                    for (j, x) in out.row_mut(r).iter_mut().enumerate() {
                                        *x -= v[c0 + j];
                                    }
                                }
                                out
                            })
                    })
                    .collect()
            })
            .collect();
        DsArray { grid, ..*self }
    }

    /// Consuming, in-place variant of [`DsArray::sub_row_vector`]: the
    /// block parameter is INOUT, so centering a freshly-produced array
    /// (the common scaler/PCA pipeline shape) mutates blocks in place
    /// instead of cloning each one.
    pub fn sub_row_vector_inplace(self, rt: &Runtime, v: Handle<Vec<f64>>) -> DsArray {
        let cb_size = self.cb_size;
        let grid = self
            .grid
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(cb, &b)| {
                        let c0 = cb * cb_size;
                        rt.task("ds_center").run2_inout(
                            b,
                            v,
                            move |m: &mut Matrix, v: &Vec<f64>| {
                                for r in 0..m.rows() {
                                    for (j, x) in m.row_mut(r).iter_mut().enumerate() {
                                        *x -= v[c0 + j];
                                    }
                                }
                            },
                        )
                    })
                    .collect()
            })
            .collect();
        DsArray { grid, ..self }
    }

    /// Divides every column by the matching entry of `v` (unit-variance
    /// scaling); entries `<= eps` divide by 1 instead (constant columns).
    pub fn div_row_vector(&self, rt: &Runtime, v: Handle<Vec<f64>>) -> DsArray {
        let cb_size = self.cb_size;
        let grid = self
            .grid
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(cb, &b)| {
                        let c0 = cb * cb_size;
                        rt.task("ds_scale")
                            .run2(b, v, move |m: &Matrix, v: &Vec<f64>| {
                                let mut out = m.clone();
                                for r in 0..out.rows() {
                                    for (j, x) in out.row_mut(r).iter_mut().enumerate() {
                                        let s = v[c0 + j];
                                        if s > f64::EPSILON {
                                            *x /= s;
                                        }
                                    }
                                }
                                out
                            })
                    })
                    .collect()
            })
            .collect();
        DsArray { grid, ..*self }
    }

    /// Consuming, in-place variant of [`DsArray::div_row_vector`]; same
    /// constant-column guard, INOUT block parameter.
    pub fn div_row_vector_inplace(self, rt: &Runtime, v: Handle<Vec<f64>>) -> DsArray {
        let cb_size = self.cb_size;
        let grid = self
            .grid
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(cb, &b)| {
                        let c0 = cb * cb_size;
                        rt.task("ds_scale")
                            .run2_inout(b, v, move |m: &mut Matrix, v: &Vec<f64>| {
                                for r in 0..m.rows() {
                                    for (j, x) in m.row_mut(r).iter_mut().enumerate() {
                                        let s = v[c0 + j];
                                        if s > f64::EPSILON {
                                            *x /= s;
                                        }
                                    }
                                }
                            })
                    })
                    .collect()
            })
            .collect();
        DsArray { grid, ..self }
    }
}

/// Labels (or any per-row `u8` annotation) partitioned to match the row
/// bands of a [`DsArray`].
#[derive(Clone)]
pub struct DsLabels {
    parts: Vec<Handle<Vec<u8>>>,
    band_rows: Vec<usize>,
}

impl DsLabels {
    /// Partitions `y` into chunks of `rb_size` aligned with a ds-array's
    /// row bands.
    pub fn from_slice(rt: &Runtime, y: &[u8], rb_size: usize) -> Self {
        assert!(rb_size > 0);
        let mut parts = Vec::new();
        let mut band_rows = Vec::new();
        for chunk in y.chunks(rb_size) {
            parts.push(rt.put(chunk.to_vec()));
            band_rows.push(chunk.len());
        }
        DsLabels { parts, band_rows }
    }

    /// Number of partitions.
    pub fn n_parts(&self) -> usize {
        self.parts.len()
    }

    /// Handle of partition `i`.
    pub fn part(&self, i: usize) -> Handle<Vec<u8>> {
        self.parts[i]
    }

    /// Rows in partition `i`.
    pub fn rows_in_part(&self, i: usize) -> usize {
        self.band_rows[i]
    }

    /// Total number of labels.
    pub fn len(&self) -> usize {
        self.band_rows.iter().sum()
    }

    /// True if there are no labels.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_matrix(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| (r * cols + c) as f64 * 0.5 - 3.0)
    }

    #[test]
    fn partition_collect_roundtrip() {
        let rt = Runtime::new();
        let m = demo_matrix(23, 7); // ragged blocks
        let ds = DsArray::from_matrix(&rt, &m, 5, 3);
        assert_eq!(ds.n_row_blocks(), 5);
        assert_eq!(ds.n_col_blocks(), 3);
        assert_eq!(ds.collect(&rt), m);
    }

    #[test]
    fn load_task_count_matches_grid() {
        let rt = Runtime::new();
        let m = demo_matrix(20, 20);
        let _ds = DsArray::from_matrix(&rt, &m, 5, 5);
        let hist = rt.trace().task_histogram();
        assert_eq!(hist["ds_load"], 16);
    }

    #[test]
    fn row_band_equals_slice() {
        let rt = Runtime::new();
        let m = demo_matrix(10, 6);
        let ds = DsArray::from_matrix(&rt, &m, 4, 2);
        let band = ds.row_band(&rt, 1);
        assert_eq!(*rt.peek(band), m.slice_rows(4, 8));
        // Last ragged band.
        let band = ds.row_band(&rt, 2);
        assert_eq!(*rt.peek(band), m.slice_rows(8, 10));
    }

    #[test]
    fn gram_matches_dense() {
        let rt = Runtime::new();
        let m = demo_matrix(12, 5);
        let ds = DsArray::from_matrix(&rt, &m, 5, 2);
        let g = ds.gram(&rt);
        let expect = m.t_matmul(&m);
        assert!(rt.peek(g).max_abs_diff(&expect) < 1e-9);
    }

    #[test]
    fn col_sums_match_dense() {
        let rt = Runtime::new();
        let m = demo_matrix(9, 4);
        let ds = DsArray::from_matrix(&rt, &m, 2, 3);
        let s = ds.col_sums(&rt);
        let expect: Vec<f64> = (0..4).map(|c| m.col(c).iter().sum()).collect();
        let got = rt.peek(s);
        for (a, b) in got.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn matmul_dense_matches() {
        let rt = Runtime::new();
        let m = demo_matrix(8, 4);
        let w = Matrix::from_fn(4, 2, |r, c| (r + c) as f64);
        let ds = DsArray::from_matrix(&rt, &m, 3, 4);
        let wh = rt.put(w.clone());
        let prod = ds.matmul_dense(&rt, wh);
        assert_eq!(prod.shape(), (8, 2));
        assert!(prod.collect(&rt).max_abs_diff(&m.matmul(&w)) < 1e-9);
    }

    #[test]
    fn center_and_scale() {
        let rt = Runtime::new();
        let m = demo_matrix(6, 3);
        let ds = DsArray::from_matrix(&rt, &m, 2, 2);
        let means = rt.put(m.col_means());
        let centered = ds.sub_row_vector(&rt, means);
        let cm = centered.collect(&rt);
        for c in 0..3 {
            let mean: f64 = cm.col(c).iter().sum::<f64>() / 6.0;
            assert!(mean.abs() < 1e-9);
        }
        let stds = rt.put(cm.col_stds(&cm.col_means()));
        let scaled = centered.div_row_vector(&rt, stds);
        let sm = scaled.collect(&rt);
        for c in 0..3 {
            let col = sm.col(c);
            let mean: f64 = col.iter().sum::<f64>() / 6.0;
            let var: f64 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 6.0;
            assert!((var - 1.0).abs() < 1e-9, "var={var}");
        }
    }

    #[test]
    fn map_blocks_applies_everywhere() {
        let rt = Runtime::new();
        let m = demo_matrix(6, 6);
        let ds = DsArray::from_matrix(&rt, &m, 2, 2);
        let doubled = ds.map_blocks(&rt, "dbl", |b| {
            let mut out = b.clone();
            out.scale(2.0);
            out
        });
        let mut expect = m.clone();
        expect.scale(2.0);
        assert_eq!(doubled.collect(&rt), expect);
    }

    #[test]
    fn tree_reduce_sums_and_task_count() {
        let rt = Runtime::new();
        let items: Vec<Handle<f64>> = (1..=9).map(|i| rt.put(i as f64)).collect();
        let total = tree_reduce(&rt, "add", &items, |a, b| a + b);
        assert_eq!(*rt.peek(total), 45.0);
        assert_eq!(rt.trace().task_histogram()["add"], 8); // n-1 tasks
    }

    #[test]
    fn tree_reduce_single_item_is_noop() {
        let rt = Runtime::new();
        let one = rt.put(5.0f64);
        let r = tree_reduce(&rt, "add", &[one], |a, b| a + b);
        assert_eq!(*rt.peek(r), 5.0);
        assert_eq!(rt.task_count(), 0);
    }

    #[test]
    fn labels_partition_alignment() {
        let rt = Runtime::new();
        let y: Vec<u8> = (0..11).map(|i| (i % 2) as u8).collect();
        let dl = DsLabels::from_slice(&rt, &y, 4);
        assert_eq!(dl.n_parts(), 3);
        assert_eq!(dl.rows_in_part(2), 3);
        assert_eq!(dl.len(), 11);
        assert_eq!(*rt.peek(dl.part(1)), vec![0, 1, 0, 1]);
    }

    #[test]
    fn reblock_identity_submits_nothing() {
        let rt = Runtime::new();
        let m = demo_matrix(12, 6);
        let ds = DsArray::from_matrix_owned(&rt, m, 4, 3);
        let before = rt.task_count();
        let same = ds.reblock(&rt, 4, 3);
        assert_eq!(rt.task_count(), before, "identity reblock is free");
        for rb in 0..ds.n_row_blocks() {
            for cb in 0..ds.n_col_blocks() {
                assert_eq!(same.block(rb, cb).id(), ds.block(rb, cb).id());
            }
        }
    }

    #[test]
    fn reblock_matches_collect_roundtrip() {
        let rt = Runtime::new();
        let m = demo_matrix(23, 7);
        let ds = DsArray::from_matrix(&rt, &m, 5, 3);
        let re = ds.reblock(&rt, 4, 2);
        assert_eq!(re.block_shape(), (4, 2));
        assert_eq!(re.n_row_blocks(), 6);
        assert_eq!(re.n_col_blocks(), 4);
        // Same content as the synchronous collect + from_matrix trip.
        let roundtrip = DsArray::from_matrix(&rt, &ds.collect(&rt), 4, 2);
        for rb in 0..re.n_row_blocks() {
            for cb in 0..re.n_col_blocks() {
                assert_eq!(
                    *rt.peek(re.block(rb, cb)),
                    *rt.peek(roundtrip.block(rb, cb))
                );
            }
        }
        assert_eq!(re.collect(&rt), m);
    }

    #[test]
    fn collect_handle_is_lazy_and_matches_collect() {
        let rt = Runtime::new();
        let m = demo_matrix(10, 4);
        let ds = DsArray::from_matrix(&rt, &m, 3, 2);
        let h = ds.collect_handle(&rt);
        assert_eq!(*rt.wait(h), m);
    }

    #[test]
    fn rows_in_band_ragged() {
        let rt = Runtime::new();
        let m = demo_matrix(10, 2);
        let ds = DsArray::from_matrix(&rt, &m, 4, 2);
        assert_eq!(ds.rows_in_band(0), 4);
        assert_eq!(ds.rows_in_band(2), 2);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn from_matrix_rejects_empty() {
        let rt = Runtime::new();
        let _ = DsArray::from_matrix(&rt, &Matrix::zeros(0, 0), 2, 2);
    }

    #[test]
    fn from_matrix_owned_matches_from_matrix() {
        let rt = Runtime::new();
        let m = demo_matrix(23, 7);
        let a = DsArray::from_matrix(&rt, &m, 5, 3);
        let b = DsArray::from_matrix_owned(&rt, m.clone(), 5, 3);
        assert_eq!(a.shape(), b.shape());
        assert_eq!(a.n_row_blocks(), b.n_row_blocks());
        for rb in 0..a.n_row_blocks() {
            for cb in 0..a.n_col_blocks() {
                assert_eq!(*rt.peek(a.block(rb, cb)), *rt.peek(b.block(rb, cb)));
            }
        }
        assert_eq!(b.collect(&rt), m);
        // Driver-side partitioning submits no ds_load tasks.
        let hist = rt.trace().task_histogram();
        assert_eq!(hist["ds_load"], 15); // only from_matrix's 5x3 grid
    }

    #[test]
    fn tree_reduce_inout_matches_and_steals() {
        let rt = Runtime::new();
        let items: Vec<Handle<f64>> = (1..=9).map(|i| rt.put(i as f64)).collect();
        let total = tree_reduce_inout(&rt, "add", &items, |a, b| *a += b);
        assert_eq!(*rt.peek(total), 45.0);
        assert_eq!(rt.trace().task_histogram()["add"], 8);
        // Interior accumulators are single-consumer, so the cascade's
        // non-leaf merges all steal.
        assert!(rt.stats().inout_steals > 0);
    }

    #[test]
    fn inplace_ops_match_clone_based() {
        let rt = Runtime::new();
        let m = demo_matrix(11, 5);
        let means = rt.put(m.col_means());
        let stds = rt.put(m.col_stds(&m.col_means()));

        let reference = DsArray::from_matrix(&rt, &m, 4, 2)
            .sub_row_vector(&rt, means)
            .div_row_vector(&rt, stds)
            .map_blocks(&rt, "dbl", |b| {
                let mut out = b.clone();
                out.scale(2.0);
                out
            })
            .collect(&rt);

        let inplace = DsArray::from_matrix_owned(&rt, m, 4, 2)
            .sub_row_vector_inplace(&rt, means)
            .div_row_vector_inplace(&rt, stds)
            .map_blocks_inplace(&rt, "dbl", |b| b.scale(2.0))
            .collect(&rt);

        assert_eq!(inplace, reference);
    }

    #[test]
    fn inplace_pipeline_steals_every_block_version() {
        // from_matrix_owned blocks have no other consumer, so a chain
        // of in-place ops should steal at every link.
        let rt = Runtime::new();
        let m = demo_matrix(12, 6);
        let v = rt.put(vec![1.0; 6]);
        let ds = DsArray::from_matrix_owned(&rt, m, 4, 3)
            .sub_row_vector_inplace(&rt, v)
            .map_blocks_inplace(&rt, "neg", |b| b.scale(-1.0));
        let _ = ds.collect(&rt);
        let st = rt.stats();
        assert_eq!(st.inout_copies, 0, "single-consumer chain must not copy");
        assert_eq!(st.inout_steals, 12); // 6 blocks x 2 in-place ops
        assert!(st.inout_steal_rate() > 0.99);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]

        /// Random chains of ds-array ops: the INOUT path must be
        /// indistinguishable from the clone-based one.
        #[test]
        fn prop_inplace_chain_matches_clone_chain(
            rows in 1usize..18,
            cols in 1usize..9,
            rb in 1usize..6,
            cb in 1usize..4,
            ops in proptest::collection::vec(0u8..4, 1..6),
        ) {
            let rt = Runtime::new();
            let m = Matrix::from_fn(rows, cols, |r, c| ((r * 13 + c * 7) as f64 * 0.31).sin());
            let v = rt.put((0..cols).map(|c| 0.5 + c as f64).collect::<Vec<f64>>());

            let mut a = DsArray::from_matrix(&rt, &m, rb, cb);
            let mut b = DsArray::from_matrix_owned(&rt, m, rb, cb);
            for &op in &ops {
                match op {
                    0 => {
                        a = a.map_blocks(&rt, "scale", |x| {
                            let mut o = x.clone();
                            o.scale(1.25);
                            o
                        });
                        b = b.map_blocks_inplace(&rt, "scale", |x| x.scale(1.25));
                    }
                    1 => {
                        a = a.sub_row_vector(&rt, v);
                        b = b.sub_row_vector_inplace(&rt, v);
                    }
                    2 => {
                        a = a.div_row_vector(&rt, v);
                        b = b.div_row_vector_inplace(&rt, v);
                    }
                    _ => {
                        a = a.map_blocks(&rt, "sq", |x| {
                            let mut o = x.clone();
                            for val in o.as_mut_slice() {
                                *val *= *val;
                            }
                            o
                        });
                        b = b.map_blocks_inplace(&rt, "sq", |x| {
                            for val in x.as_mut_slice() {
                                *val *= *val;
                            }
                        });
                    }
                }
            }
            proptest::prop_assert_eq!(a.collect(&rt), b.collect(&rt));
        }
    }
}
