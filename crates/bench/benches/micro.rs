//! Criterion micro-benchmarks of the numeric and runtime kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dislib::svm::{fit_svc, SvcParams};
use linalg::fft::{fft_inplace, Complex};
use linalg::stft::{spectrogram, SpectrogramConfig, SpectrogramPlan};
use linalg::{eigh, Kernel, Matrix};
use nnet::Conv1d;
use std::hint::black_box;
use taskrt::sim::{simulate, ClusterSpec, SimOptions};
use taskrt::Runtime;

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &n in &[256usize, 1024, 4096] {
        let buf: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.01).sin(), 0.0))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut x = buf.clone();
                fft_inplace(&mut x);
                black_box(x[0].re)
            })
        });
    }
    group.finish();
}

fn bench_spectrogram(c: &mut Criterion) {
    let sig: Vec<f64> = (0..3000).map(|i| (i as f64 * 0.05).sin()).collect();
    let cfg = SpectrogramConfig {
        nperseg: 128,
        noverlap: 32,
        fs: 300.0,
    };
    c.bench_function("spectrogram_3000", |b| {
        b.iter(|| black_box(spectrogram(black_box(&sig), &cfg)))
    });
    // The dataset-sweep shape: one plan reused across every signal.
    c.bench_function("spectrogram_3000_plan_reuse", |b| {
        let mut plan = SpectrogramPlan::new(&cfg);
        b.iter(|| black_box(plan.compute(black_box(&sig))))
    });
}

fn bench_conv(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    // The perf binary's CNN-realistic per-sample shape.
    let (in_ch, out_ch, len, k) = (16usize, 32usize, 256usize, 7usize);
    let mut rng = StdRng::seed_from_u64(11);
    let mut conv = Conv1d::new(in_ch, out_ch, k, 1, &mut rng);
    let x: Vec<f32> = (0..in_ch * len)
        .map(|_| rng.random::<f32>() * 2.0 - 1.0)
        .collect();
    let dout: Vec<f32> = (0..out_ch * conv.out_len(len))
        .map(|_| rng.random::<f32>() * 2.0 - 1.0)
        .collect();
    let mut group = c.benchmark_group("conv1d_16x32_len256_k7");
    group.bench_function("forward_im2col", |b| {
        b.iter(|| black_box(conv.forward(black_box(&x), len)))
    });
    group.bench_function("forward_naive", |b| {
        b.iter(|| black_box(conv.forward_naive(black_box(&x), len)))
    });
    group.bench_function("backward_im2col", |b| {
        b.iter(|| black_box(conv.backward(black_box(&x), len, black_box(&dout))))
    });
    group.bench_function("backward_naive", |b| {
        b.iter(|| black_box(conv.backward_naive(black_box(&x), len, black_box(&dout))))
    });
    group.finish();
}

fn bench_eigh(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigh");
    for &n in &[16usize, 64, 128] {
        let a = Matrix::from_fn(n, n, |r, col| {
            let v = ((r * col) as f64 * 0.01).sin();
            if r == col {
                v + 2.0
            } else {
                v
            }
        });
        let sym = Matrix::from_fn(n, n, |r, col| 0.5 * (a.get(r, col) + a.get(col, r)));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(eigh(black_box(&sym))))
        });
    }
    group.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    // 32/128 fit in L1/L2; 320/512 exceed the KC=256 panel and exercise
    // the cache-blocked register-tiled path end to end.
    group.sample_size(10);
    for &n in &[32usize, 128, 320, 512] {
        let a = Matrix::from_fn(n, n, |r, col| (r + col) as f64 * 0.25);
        let b_ = Matrix::from_fn(n, n, |r, col| (r as f64 - col as f64) * 0.5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(a.matmul(black_box(&b_))))
        });
    }
    group.finish();
}

fn bench_sgemm_packed(c: &mut Criterion) {
    // The f32 kernel floor: the packed, runtime-FMA-dispatched entry
    // point against the scalar oracle, at a size inside one KC=256
    // depth panel and one spanning several.
    let mut group = c.benchmark_group("sgemm_packed");
    group.sample_size(10);
    for &n in &[128usize, 512] {
        let a: Vec<f32> = (0..n * n).map(|i| ((i as f32) * 1e-3).sin()).collect();
        let b_: Vec<f32> = (0..n * n).map(|i| ((i as f32) * 2e-3).cos()).collect();
        let mut out = vec![0.0f32; n * n];
        group.bench_with_input(BenchmarkId::new("packed", n), &n, |b, _| {
            b.iter(|| {
                out.fill(0.0);
                linalg::sgemm_nn(n, n, n, &a, &b_, &mut out);
                black_box(out[0])
            })
        });
        let mut out = vec![0.0f32; n * n];
        group.bench_with_input(BenchmarkId::new("scalar", n), &n, |b, _| {
            b.iter(|| {
                out.fill(0.0);
                linalg::sgemm_nn_scalar(n, n, n, &a, &b_, &mut out);
                black_box(out[0])
            })
        });
    }
    group.finish();
}

fn bench_locality_chain(c: &mut Criterion) {
    // Affinity-steered stealing A/B: the blocked elementwise chain on a
    // threaded pool with the locality heuristic on vs off. The values
    // are bit-identical either way (asserted by `perf --check` and the
    // scheduler stress suite); only the schedule shifts.
    use dsarray::DsArray;
    use taskrt::{ExecMode, RuntimeConfig};
    let x = Matrix::from_fn(256, 192, |r, col| ((r * 192 + col) as f64 * 1e-4).sin());
    let v: Vec<f64> = (0..192).map(|c| 1.0 + (c % 7) as f64 * 0.25).collect();
    let mut group = c.benchmark_group("locality_chain");
    group.sample_size(10);
    for &locality in &[true, false] {
        let name = if locality { "on" } else { "off" };
        group.bench_with_input(BenchmarkId::from_parameter(name), &locality, |b, &loc| {
            b.iter(|| {
                let rt = Runtime::with_config(RuntimeConfig {
                    mode: ExecMode::Threads(4),
                    locality: loc,
                    ..RuntimeConfig::default()
                });
                let vv = rt.put(v.clone());
                let mut a = DsArray::from_matrix_owned(&rt, x.clone(), 32, 32);
                for _ in 0..3 {
                    a = a
                        .map_blocks_inplace(&rt, "scale", |blk| blk.scale(1.0009))
                        .sub_row_vector_inplace(&rt, vv)
                        .div_row_vector_inplace(&rt, vv);
                }
                black_box(a.collect(&rt).get(0, 0))
            })
        });
    }
    group.finish();
}

fn bench_scheduler_throughput(c: &mut Criterion) {
    // Pure scheduler overhead: a 2000-node no-op DAG with random
    // dependencies (the shape of the `perf` binary's acceptance
    // workload) driven end to end through submit + barrier.
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use taskrt::runtime::AnyArc;
    use taskrt::DataId;

    let n = 2000usize;
    let mut rng = StdRng::seed_from_u64(42);
    let dag: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            if i == 0 {
                return Vec::new();
            }
            let ndeps = (rng.next_u64() % 9) as usize;
            let window = i.min(64);
            let mut deps: Vec<usize> = (0..ndeps)
                .map(|_| i - 1 - (rng.next_u64() as usize % window))
                .collect();
            deps.sort_unstable();
            deps.dedup();
            deps
        })
        .collect();
    let unit = std::sync::Arc::new(0u8);
    let drive = |rt: &Runtime| {
        let mut outs: Vec<DataId> = Vec::with_capacity(dag.len());
        for deps in &dag {
            let inputs: Vec<DataId> = deps.iter().map(|&j| outs[j]).collect();
            let u = unit.clone();
            let ids = rt.submit_raw(
                "noop".to_string(),
                0,
                0,
                inputs,
                1,
                Box::new(move |_ctx, _ins| vec![(u.clone() as AnyArc, 1)]),
            );
            outs.push(ids[0]);
        }
        rt.barrier();
    };
    let mut group = c.benchmark_group("scheduler_2000_noop");
    group.bench_function("inline", |b| b.iter(|| drive(&Runtime::new())));
    group.bench_function("threaded_4", |b| b.iter(|| drive(&Runtime::threaded(4))));
    group.finish();
}

fn bench_smo(c: &mut Criterion) {
    // Deterministic small blob set.
    let n = 80;
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let cls = (i % 2) as f64 * 2.0 - 1.0;
            vec![
                cls * 2.0 + (i as f64 * 0.7).sin() * 0.5,
                (i as f64 * 0.3).cos() * 0.5,
            ]
        })
        .collect();
    let x = Matrix::from_rows(&rows);
    let y: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
    let params = SvcParams {
        kernel: Kernel::Rbf { gamma: 0.5 },
        ..Default::default()
    };
    c.bench_function("smo_fit_80x2", |b| {
        b.iter(|| black_box(fit_svc(&x, &y, &params)))
    });
}

fn bench_runtime_submission(c: &mut Criterion) {
    c.bench_function("taskrt_submit_exec_1000_inline", |b| {
        b.iter(|| {
            let rt = Runtime::new();
            let x = rt.put(1.0f64);
            let mut h = x;
            for _ in 0..1000 {
                h = rt.task("inc").run1(h, |v| v + 1.0);
            }
            black_box(*rt.peek(h))
        })
    });
}

fn bench_threaded_vs_inline(c: &mut Criterion) {
    // A genuinely parallel workload: independent gram computations.
    let work = |rt: &Runtime| {
        let blocks: Vec<_> = (0..16)
            .map(|i| {
                rt.put(Matrix::from_fn(48, 48, move |r, q| {
                    ((r + q + i) % 7) as f64
                }))
            })
            .collect();
        let grams: Vec<_> = blocks
            .iter()
            .map(|&b| rt.task("gram").run1(b, |m: &Matrix| m.t_matmul(m)))
            .collect();
        let total = rt.task("sum").run_many(&grams, |gs: &[&Matrix]| {
            gs.iter().map(|g| g.fro_norm()).sum::<f64>()
        });
        *rt.peek(total)
    };
    let mut group = c.benchmark_group("runtime_modes");
    group.bench_function("inline", |b| b.iter(|| black_box(work(&Runtime::new()))));
    group.bench_function("threaded_4", |b| {
        b.iter(|| black_box(work(&Runtime::threaded(4))))
    });
    group.finish();
}

fn bench_dataplane_inout(c: &mut Criterion) {
    // The zero-copy data-plane comparison at criterion-friendly scale:
    // a chain of elementwise ds-array ops run once through the
    // clone-based task API and once through the INOUT (in-place) one.
    use dsarray::DsArray;

    let (rows, cols, rb, cb) = (256usize, 192usize, 64usize, 64usize);
    let x = Matrix::from_fn(rows, cols, |r, q| ((r * cols + q) as f64 * 1e-3).sin());
    let v: Vec<f64> = (0..cols).map(|q| 1.0 + (q % 5) as f64 * 0.5).collect();

    let mut group = c.benchmark_group("dsarray_elementwise_256x192");
    group.bench_function("clone", |b| {
        b.iter(|| {
            let rt = Runtime::new();
            let a = DsArray::from_matrix(&rt, &x, rb, cb);
            let a = a.map_blocks(&rt, "dp_scale", |m: &Matrix| {
                let mut m = m.clone();
                m.scale(1.0009);
                m
            });
            let vh = rt.put(v.clone());
            let a = a.sub_row_vector(&rt, vh);
            let a = a.div_row_vector(&rt, vh);
            black_box(a.collect(&rt).fro_norm())
        })
    });
    group.bench_function("inout", |b| {
        b.iter(|| {
            let rt = Runtime::new();
            let a = DsArray::from_matrix(&rt, &x, rb, cb);
            let a = a.map_blocks_inplace(&rt, "dp_scale", |m: &mut Matrix| m.scale(1.0009));
            let vh = rt.put(v.clone());
            let a = a.sub_row_vector_inplace(&rt, vh);
            let a = a.div_row_vector_inplace(&rt, vh);
            black_box(a.collect(&rt).fro_norm())
        })
    });
    group.finish();
}

fn bench_fusion_pipeline(c: &mut Criterion) {
    // The graph-rewrite optimizer on the dislib pipeline the paper
    // benchmarks: StandardScaler.transform feeding PCA fit + project.
    // Per-block centering/scaling chains fuse into single dispatches;
    // the fused and eager runtimes produce bit-identical projections
    // (asserted by the dislib test suite), so this measures pure
    // scheduling overhead. Worker dispatch (the wake/dequeue round
    // trip a distributed runtime pays per task) is what fusion
    // amortizes, so both sides run on a worker thread rather than
    // inline. The pipeline's fusible chains are shallow (~1.5 members
    // per dispatch), so expect rough parity here — the deep-chain
    // regime where fusion wins outright is the perf binary's 9-op
    // elementwise chain.
    use dislib::pca::{Components, Pca};
    use dislib::scaler::StandardScaler;
    use dsarray::DsArray;
    use taskrt::{ExecMode, RuntimeConfig};

    let (rows, cols, rb) = (1024usize, 12usize, 8usize);
    let x = Matrix::from_fn(rows, cols, |r, q| {
        ((r * cols + q) as f64 * 1e-3).sin() * (1.0 + q as f64)
    });

    let run = |fuse: bool| {
        let rt = Runtime::with_config(RuntimeConfig {
            fuse,
            mode: ExecMode::Threads(1),
            ..RuntimeConfig::default()
        });
        let ds = DsArray::from_matrix(&rt, &x, rb, cols);
        let (_, scaled) = StandardScaler::fit_transform(&rt, &ds);
        let pca = Pca::fit(&rt, &scaled, Components::Count(4));
        let proj = pca.transform(&rt, &scaled);
        proj.collect(&rt).fro_norm()
    };

    let mut group = c.benchmark_group("scaler_pca_1024x12");
    group.bench_function("eager", |b| b.iter(|| black_box(run(false))));
    group.bench_function("fused", |b| b.iter(|| black_box(run(true))));
    group.finish();
}

fn bench_pool_covariance(c: &mut Criterion) {
    // PCA covariance temporaries: X^T X allocates an output matrix per
    // call. With a warmed pool the buffer is recycled across calls;
    // clearing the pool each iteration forces a fresh allocation.
    let n = 256usize;
    let x = Matrix::from_fn(n, n, |r, q| ((r + 3 * q) % 11) as f64 * 0.125);

    let mut group = c.benchmark_group("covariance_t_matmul_256");
    group.sample_size(20);
    group.bench_function("pool_fresh", |b| {
        b.iter(|| {
            linalg::pool::clear();
            let g = x.t_matmul(&x);
            black_box(g.fro_norm())
        })
    });
    group.bench_function("pool_warm", |b| {
        linalg::pool::clear();
        b.iter(|| {
            let g = x.t_matmul(&x);
            let norm = g.fro_norm();
            g.into_pool();
            black_box(norm)
        })
    });
    group.finish();
}

fn bench_des_replay(c: &mut Criterion) {
    // Record a moderately wide DAG once, then benchmark simulation.
    let rt = Runtime::new();
    let src = rt.put(0u64);
    let mids: Vec<_> = (0..200)
        .map(|_| rt.task("work").run1(src, |v| v + 1))
        .collect();
    let _sink = rt
        .task("join")
        .run_many(&mids, |xs| xs.iter().copied().sum::<u64>());
    let trace = rt.finish();
    let cluster = ClusterSpec::marenostrum4(4);
    c.bench_function("des_replay_202_tasks", |b| {
        b.iter(|| black_box(simulate(&trace, &cluster, &SimOptions::default())))
    });
}

criterion_group!(
    benches,
    bench_fft,
    bench_spectrogram,
    bench_conv,
    bench_eigh,
    bench_gemm,
    bench_sgemm_packed,
    bench_locality_chain,
    bench_scheduler_throughput,
    bench_smo,
    bench_runtime_submission,
    bench_threaded_vs_inline,
    bench_dataplane_inout,
    bench_fusion_pipeline,
    bench_pool_covariance,
    bench_des_replay
);
criterion_main!(benches);
