//! Criterion-wrapped mini versions of the paper experiments, so
//! `cargo bench` exercises every table/figure pipeline end-to-end.
//!
//! Full-size regeneration lives in the harness binaries (`table1`,
//! `fig11`, `fig12`, `graphs`, `pca_cost`, `ablate`); these benches use
//! a reduced dataset to keep wall-clock sensible while covering the
//! same code paths.

use bench::costs::ScaleModel;
use bench::pipeline::{run_cnn, run_csvm, run_knn, run_rf, PipelineConfig, Prepared};
use criterion::{criterion_group, criterion_main, Criterion};
use dislib::pca::{Components, Pca};
use dsarray::DsArray;
use ecg::{Dataset, DatasetSpec, Scale};
use std::hint::black_box;
use taskrt::sim::{simulate, ClusterSpec, Policy, SimOptions};
use taskrt::Runtime;

fn mini_cfg() -> PipelineConfig {
    PipelineConfig {
        n_components: 48,
        block_rows: 16,
        block_cols: 128,
        k_folds: 3,
        ..Default::default()
    }
}

fn mini_prepare() -> Prepared {
    let cfg = mini_cfg();
    let mut spec = DatasetSpec::at_scale(Scale::Small).with_seed(cfg.seed);
    spec.n_normal = 36;
    spec.n_af = 6;
    spec.ecg.max_duration_s = 11.0;
    let ds = Dataset::build(&spec);
    let x = ds.x.slice_cols(0, ds.x.cols().min(320));
    let rt = Runtime::new();
    let dist = DsArray::from_matrix(&rt, &x, cfg.block_rows, cfg.block_cols);
    let pca = Pca::fit(&rt, &dist, Components::Count(cfg.n_components));
    let projected = pca.transform(&rt, &dist);
    let xp = projected.collect(&rt);
    Prepared {
        xp,
        y: ds.y,
        pca_trace: rt.finish(),
        raw_features: x.cols(),
    }
}

fn bench_experiments(c: &mut Criterion) {
    let prep = mini_prepare();
    let cfg = mini_cfg();
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);

    group.bench_function("table1_csvm_fold_cv", |b| {
        b.iter(|| black_box(run_csvm(&prep, &cfg).accuracy()))
    });
    group.bench_function("table1_knn_fold_cv", |b| {
        b.iter(|| black_box(run_knn(&prep, &cfg).accuracy()))
    });
    group.bench_function("table1_rf_fold_cv", |b| {
        b.iter(|| black_box(run_rf(&prep, &cfg, 0).accuracy()))
    });
    group.bench_function("table1_cnn_fold_cv", |b| {
        b.iter(|| black_box(run_cnn(&prep, &cfg, 1).accuracy()))
    });

    // Fig. 11-style sweep: record once, replay at several node counts.
    let trace = run_csvm(&prep, &cfg).trace;
    let model = ScaleModel::paper_scale(8.0, 20.0);
    group.bench_function("fig11_des_sweep_6_nodes", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for nodes in 1..=6 {
                let opts = SimOptions {
                    policy: Policy::LocalityAware,
                    model_transfers: true,
                    duration_of: Some(model.duration_fn()),
                    ..SimOptions::default()
                };
                total += simulate(&trace, &ClusterSpec::marenostrum4(nodes), &opts).makespan_s;
            }
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
