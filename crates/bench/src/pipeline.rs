//! The end-to-end AF-classification workflow at executable scale.
//!
//! One function per paper algorithm, each returning the 5-fold confusion
//! matrices *and* the recorded task trace, so the same run feeds both
//! Table I (quality) and Fig. 11/12 (scalability via DES replay).

use dislib::csvm::{CascadeSvm, CascadeSvmParams};
use dislib::knn::{KnnClassifier, KnnParams};
use dislib::model_selection::{take, KFold};
use dislib::pca::{Components, Pca};
use dislib::rf::{RandomForest, RfParams};
use dislib::scaler::StandardScaler;
use dislib::ConfusionMatrix;
use dsarray::{DsArray, DsLabels};
use ecg::{Dataset, DatasetSpec, Scale};
use linalg::Matrix;
use nnet::{FoldData, Network, ParallelConfig, TrainParams};
use taskrt::{Runtime, Trace};

/// Result of one algorithm's 5-fold cross-validated run.
pub struct AlgoResult {
    /// Algorithm name ("csvm" | "knn" | "rf" | "cnn").
    pub name: String,
    /// Per-fold confusion matrices.
    pub folds: Vec<ConfusionMatrix>,
    /// Recorded task trace of the whole run (all folds).
    pub trace: Trace,
}

impl AlgoResult {
    /// Confusion counts pooled over folds.
    pub fn pooled(&self) -> ConfusionMatrix {
        self.folds
            .iter()
            .fold(ConfusionMatrix::default(), |acc, f| acc.merged(f))
    }

    /// Pooled accuracy.
    pub fn accuracy(&self) -> f64 {
        self.pooled().accuracy()
    }
}

/// The preprocessed dataset: PCA-projected features ready for CV.
pub struct Prepared {
    /// Projected design matrix (`n x k`).
    pub xp: Matrix,
    /// Labels (1 = AF).
    pub y: Vec<u8>,
    /// Trace of the preprocessing (load + PCA) workflow.
    pub pca_trace: Trace,
    /// Number of raw STFT features before PCA.
    pub raw_features: usize,
}

/// Pipeline knobs shared by the harness binaries.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Dataset scale preset.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// PCA components kept (fixed count keeps the CNN input shape
    /// stable; the paper's 95 %-variance rule on its data kept 3269 of
    /// 18810 ≈ 17 %).
    pub n_components: usize,
    /// Row-block size for the ds-arrays (paper: 500; small scale uses a
    /// proportional value).
    pub block_rows: usize,
    /// Column-block size.
    pub block_cols: usize,
    /// Disable the augmentation step (ablation).
    pub augment: bool,
    /// Number of CV folds (paper: 5).
    pub k_folds: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            seed: 2017,
            n_components: 160,
            block_rows: 60,
            block_cols: 256,
            augment: true,
            k_folds: 5,
        }
    }
}

/// Generates the dataset, extracts STFT features, and runs the
/// distributed PCA (paper §III-B); everything is recorded in a trace.
pub fn prepare(cfg: &PipelineConfig) -> Prepared {
    let mut spec = DatasetSpec::at_scale(cfg.scale).with_seed(cfg.seed);
    spec.augment = cfg.augment;
    let ds = Dataset::build(&spec);
    let raw_features = ds.x.cols();

    let rt = Runtime::new();
    // The dataset matrix is only needed as blocks: hand it over to the
    // ds-array (driver-side partition, no ds_load tasks, buffer
    // recycled) instead of cloning it into the data store.
    let dist = DsArray::from_matrix_owned(&rt, ds.x, cfg.block_rows, cfg.block_cols);
    let n_comp = cfg.n_components.min(raw_features);
    let pca = Pca::fit(&rt, &dist, Components::Count(n_comp));
    let projected = pca.transform(&rt, &dist);
    let xp = projected.collect(&rt);
    Prepared {
        xp,
        y: ds.y,
        pca_trace: rt.finish(),
        raw_features,
    }
}

/// CSVM: 5-fold CV over the projected features (paper Table Ia,
/// Fig. 11a).
pub fn run_csvm(prep: &Prepared, cfg: &PipelineConfig) -> AlgoResult {
    const GAMMA_MULT: f64 = 18.0;
    let rt = Runtime::new();
    let mut folds = Vec::new();
    // dislib's CascadeSVM defaults: C = 1, gamma = "auto" = 1/n_features
    // — on unstandardized PCA scores this under-scales the RBF kernel,
    // which is the plausible mechanism behind the paper's 74.9 %.
    let params = CascadeSvmParams {
        svc: dislib::SvcParams {
            c: 0.5,
            kernel: linalg::Kernel::Rbf {
                gamma: GAMMA_MULT * linalg::kernels::gamma_scale(&prep.xp),
            },
            ..Default::default()
        },
        ..Default::default()
    };
    let kf = KFold {
        k: cfg.k_folds,
        shuffle: true,
        seed: cfg.seed,
    };
    for (train_idx, test_idx) in kf.split(prep.xp.rows()) {
        let (xtr, ytr) = take(&prep.xp, &prep.y, &train_idx);
        let (xte, yte) = take(&prep.xp, &prep.y, &test_idx);
        let (tr_cols, te_cols) = (xtr.cols(), xte.cols());
        let dtr = DsArray::from_matrix_owned(&rt, xtr, cfg.block_rows, tr_cols);
        let ltr = DsLabels::from_slice(&rt, &ytr, cfg.block_rows);
        let model = CascadeSvm::fit(&rt, &dtr, &ltr, params);
        let dte = DsArray::from_matrix_owned(&rt, xte, cfg.block_rows, te_cols);
        let preds = model.predict(&rt, &dte);
        let mut all_pred = Vec::new();
        for p in preds {
            all_pred.extend(rt.wait(p).iter().copied());
        }
        folds.push(ConfusionMatrix::from_labels(&yte, &all_pred));
    }
    AlgoResult {
        name: "csvm".into(),
        folds,
        trace: rt.finish(),
    }
}

/// KNN with StandardScaler (paper Table Ib, Fig. 11b). Block size is
/// halved relative to CSVM, as in the paper (250 vs 500).
pub fn run_knn(prep: &Prepared, cfg: &PipelineConfig) -> AlgoResult {
    let rt = Runtime::new();
    let rb = (cfg.block_rows / 2).max(4);
    let mut folds = Vec::new();
    let kf = KFold {
        k: cfg.k_folds,
        shuffle: true,
        seed: cfg.seed,
    };
    for (train_idx, test_idx) in kf.split(prep.xp.rows()) {
        let (xtr, ytr) = take(&prep.xp, &prep.y, &train_idx);
        let (xte, yte) = take(&prep.xp, &prep.y, &test_idx);
        let (tr_cols, te_cols) = (xtr.cols(), xte.cols());
        let dtr = DsArray::from_matrix_owned(&rt, xtr, rb, tr_cols);
        let ltr = DsLabels::from_slice(&rt, &ytr, rb);
        let (scaler, scaled_tr) = StandardScaler::fit_transform(&rt, &dtr);
        let model = KnnClassifier::fit(&rt, &scaled_tr, &ltr, KnnParams::default());
        let dte = DsArray::from_matrix_owned(&rt, xte, rb, te_cols);
        let scaled_te = scaler.transform(&rt, &dte);
        let preds = model.predict(&rt, &scaled_te);
        let mut all_pred = Vec::new();
        for p in preds {
            all_pred.extend(rt.wait(p).iter().copied());
        }
        folds.push(ConfusionMatrix::from_labels(&yte, &all_pred));
    }
    AlgoResult {
        name: "knn".into(),
        folds,
        trace: rt.finish(),
    }
}

/// Random Forest with 40 estimators (paper Table Ic, Fig. 11c).
pub fn run_rf(prep: &Prepared, cfg: &PipelineConfig, distr_depth: usize) -> AlgoResult {
    let rt = Runtime::new();
    // dislib RF trains each estimator in a multi-core task; 4 cores per
    // task reproduces the paper's wave/packing behaviour on 48-core
    // nodes.
    let params = RfParams {
        n_estimators: 40,
        distr_depth,
        seed: cfg.seed,
        task_cores: 4,
        ..Default::default()
    };
    let mut folds = Vec::new();
    let kf = KFold {
        k: cfg.k_folds,
        shuffle: true,
        seed: cfg.seed,
    };
    for (train_idx, test_idx) in kf.split(prep.xp.rows()) {
        let (xtr, ytr) = take(&prep.xp, &prep.y, &train_idx);
        let (xte, yte) = take(&prep.xp, &prep.y, &test_idx);
        let xh = rt.put(xtr);
        let yh = rt.put(ytr);
        let forest = RandomForest::fit(&rt, xh, yh, params);
        let teh = rt.put(xte);
        let pred = forest.predict(&rt, teh);
        folds.push(ConfusionMatrix::from_labels(&yte, &rt.wait(pred)));
    }
    AlgoResult {
        name: "rf".into(),
        folds,
        trace: rt.finish(),
    }
}

/// Partitions the dataset into CV folds with one `cnn_partition` task
/// per fold, chained sequentially (the master reads and splits the
/// dataset serially — "the part of the workflow previous to the training
/// of the folds which includes the partitioning and distribution of the
/// dataset" that the paper blames for the nested version not reaching a
/// 5× speed-up).
fn partition_folds(
    rt: &Runtime,
    prep: &Prepared,
    cfg: &PipelineConfig,
) -> (Vec<taskrt::Handle<FoldData>>, Vec<Vec<u8>>) {
    // Standardize the PCA scores for the network: dominant components
    // have arbitrarily large variance, which stalls SGD.
    let means = prep.xp.col_means();
    let stds = prep.xp.col_stds(&means);
    let mut xn = prep.xp.clone();
    for r in 0..xn.rows() {
        for (c, v) in xn.row_mut(r).iter_mut().enumerate() {
            *v = (*v - means[c]) / stds[c].max(1e-9);
        }
    }
    let full = rt.put((xn, prep.y.clone()));
    let kf = KFold {
        k: cfg.k_folds,
        shuffle: true,
        seed: cfg.seed,
    };
    let mut handles = Vec::new();
    let mut truths = Vec::new();
    let mut prev: Option<taskrt::Handle<FoldData>> = None;
    for (train_idx, test_idx) in kf.split(prep.xp.rows()) {
        truths.push(test_idx.iter().map(|&i| prep.y[i]).collect());
        let make = move |d: &(Matrix, Vec<u8>)| {
            let (x_train, y_train) = take(&d.0, &d.1, &train_idx);
            let (x_test, y_test) = take(&d.0, &d.1, &test_idx);
            FoldData {
                x_train,
                y_train,
                x_test,
                y_test,
            }
        };
        let h = match prev {
            None => rt.task("cnn_partition").run1(full, make),
            Some(p) => rt
                .task("cnn_partition")
                .run2(full, p, move |d, _prev| make(d)),
        };
        prev = Some(h);
        handles.push(h);
    }
    (handles, truths)
}

fn cnn_cfg(cfg: &PipelineConfig, gpus_per_task: u32) -> ParallelConfig {
    ParallelConfig {
        epochs: 7,
        workers: 4,
        gpus_per_task,
        train: TrainParams {
            lr: 0.03,
            momentum: 0.9,
            batch_size: 4,
            seed: cfg.seed,
        },
    }
}

/// CNN trained data-parallel with nesting (paper Table Id, Fig. 12).
/// Set `gpus_per_task` to 1 or 4 to mirror the paper's configurations.
pub fn run_cnn(prep: &Prepared, cfg: &PipelineConfig, gpus_per_task: u32) -> AlgoResult {
    let rt = Runtime::new();
    let pcfg = cnn_cfg(cfg, gpus_per_task);
    let net0 = Network::afib_cnn(prep.xp.cols(), cfg.seed);
    let (handles, truths) = partition_folds(&rt, prep, cfg);
    let results = nnet::train_kfold_nested_handles(&rt, handles, &net0, &pcfg);
    let folds = results
        .into_iter()
        .zip(truths)
        .map(|(h, y_true)| {
            let res = rt.wait(h);
            ConfusionMatrix::from_labels(&y_true, &res.predictions)
        })
        .collect();
    AlgoResult {
        name: "cnn".into(),
        folds,
        trace: rt.finish(),
    }
}

/// Builds the un-nested CNN workflow (Fig. 9 / Fig. 12 baselines): the
/// driver waits per fold and per epoch.
pub fn run_cnn_flat(prep: &Prepared, cfg: &PipelineConfig, gpus_per_task: u32) -> AlgoResult {
    let rt = Runtime::new();
    let pcfg = cnn_cfg(cfg, gpus_per_task);
    let net0 = Network::afib_cnn(prep.xp.cols(), cfg.seed);
    let (handles, truths) = partition_folds(&rt, prep, cfg);
    let results = nnet::train_kfold_handles(&rt, handles, &net0, &pcfg);
    let folds = results
        .iter()
        .zip(truths)
        .map(|(r, y_true)| ConfusionMatrix::from_labels(&y_true, &r.predictions))
        .collect();
    AlgoResult {
        name: "cnn_flat".into(),
        folds,
        trace: rt.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> PipelineConfig {
        PipelineConfig {
            n_components: 48,
            block_rows: 16,
            block_cols: 128,
            k_folds: 3,
            ..Default::default()
        }
    }

    fn tiny_prep() -> &'static Prepared {
        // Shrink the dataset below the Small preset for unit-test speed,
        // and share one prepared dataset across the test binary.
        static PREP: std::sync::OnceLock<Prepared> = std::sync::OnceLock::new();
        PREP.get_or_init(|| {
            let cfg = tiny_cfg();
            let mut spec = DatasetSpec::at_scale(Scale::Small).with_seed(cfg.seed);
            spec.n_normal = 40;
            spec.n_af = 6;
            spec.ecg.max_duration_s = 11.0;
            let ds = Dataset::build(&spec);
            // Keep the feature count small: the covariance
            // eigendecomposition is cubic in it.
            let x = ds.x.slice_cols(0, ds.x.cols().min(320));
            let rt = Runtime::new();
            let dist = DsArray::from_matrix(&rt, &x, cfg.block_rows, cfg.block_cols);
            let pca = Pca::fit(&rt, &dist, Components::Count(cfg.n_components));
            let projected = pca.transform(&rt, &dist);
            let xp = projected.collect(&rt);
            Prepared {
                xp,
                y: ds.y,
                pca_trace: rt.finish(),
                raw_features: x.cols(),
            }
        })
    }

    #[test]
    fn prepared_shapes_are_consistent() {
        let p = tiny_prep();
        assert_eq!(p.xp.rows(), p.y.len());
        assert_eq!(p.xp.cols(), 48);
        assert!(p.raw_features > 48);
        assert!(p.pca_trace.task_histogram().contains_key("pca_eigh"));
    }

    #[test]
    fn csvm_pipeline_runs_and_beats_chance() {
        let p = tiny_prep();
        let res = run_csvm(p, &tiny_cfg());
        assert_eq!(res.folds.len(), 3);
        assert_eq!(res.pooled().total(), p.y.len());
        assert!(res.accuracy() > 0.5, "acc={}", res.accuracy());
    }

    #[test]
    fn rf_pipeline_runs() {
        let p = tiny_prep();
        let res = run_rf(p, &tiny_cfg(), 0);
        assert_eq!(res.pooled().total(), p.y.len());
        assert!(res.accuracy() > 0.5);
        assert_eq!(res.trace.task_histogram()["rf_build_tree"], 40 * 3);
    }

    #[test]
    fn knn_pipeline_runs() {
        let p = tiny_prep();
        let res = run_knn(p, &tiny_cfg());
        assert_eq!(res.pooled().total(), p.y.len());
    }

    #[test]
    fn cnn_pipeline_runs() {
        let p = tiny_prep();
        let res = run_cnn(p, &tiny_cfg(), 1);
        assert_eq!(res.pooled().total(), p.y.len());
        assert!(res.accuracy() > 0.5, "acc={}", res.accuracy());
        // Nested fold tasks present.
        assert_eq!(res.trace.task_histogram()["cnn_fold"], 3);
    }
}
