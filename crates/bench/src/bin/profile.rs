//! Observability harness: run a real pipeline stage on the threaded
//! scheduler and export every `taskrt::obs` artifact.
//!
//! Plays the role Extrae + Paraver play in the paper: one command that
//! records an execution, aggregates it, and writes timelines you can
//! open in a viewer. Produces, under `out/`:
//!
//! * `profile.json` — scheduler counters ([`taskrt::RuntimeStats`]),
//!   per-kind profile ([`taskrt::Profile`]: count, total/mean/p50/p95,
//!   bytes, critical-path share) and the simulated per-node breakdown
//!   ([`taskrt::SimProfile`]).
//! * `profile.trace.json` — Chrome-trace timeline of the *real* run
//!   (one track per driver/worker); open in <https://ui.perfetto.dev>.
//! * `profile_sim.trace.json` — Chrome-trace timeline of the same DAG
//!   replayed on a simulated MareNostrum 4 partition (one track per
//!   node, transfer and compute slices split).
//!
//! The same tables are printed to stdout.
//!
//! Usage: `cargo run --release -p bench --bin profile -- [--scale small|full]
//! [--workers N] [--nodes N] [--check]`
//!
//! `--check` re-parses the written JSON and asserts the key counters
//! are non-zero (the CI smoke assertion); the process exits non-zero on
//! any violation.

use bench::report::{write_artifact, Args};
use dislib::pca::{Components, Pca};
use dsarray::DsArray;
use ecg::{Dataset, DatasetSpec, Scale};
use taskrt::json::Value;
use taskrt::obs::{chrome_trace, chrome_trace_schedule};
use taskrt::sim::{simulate, ClusterSpec, SimOptions};
use taskrt::{Profile, Runtime, SimProfile};

fn main() {
    let args = Args::capture();
    let scale = args.get("scale").unwrap_or("small").to_string();
    let small = scale == "small";
    let default_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8);
    let workers: usize = args.get_or("workers", default_workers);
    let nodes: usize = args.get_or("nodes", 4);
    let check = args.has("check");

    // -- workload: dataset load + distributed PCA (paper §III-B) ------
    // Runs on the threaded scheduler so the steal/wakeup/queue counters
    // exercise the same paths as a production run.
    let mut spec = DatasetSpec::at_scale(Scale::Small).with_seed(2017);
    if small {
        spec.n_normal = 40;
        spec.n_af = 6;
        spec.ecg.max_duration_s = 11.0;
    }
    let ds = Dataset::build(&spec);
    let x = if small {
        ds.x.slice_cols(0, ds.x.cols().min(320))
    } else {
        ds.x
    };
    let (block_rows, block_cols, n_comp) = if small { (16, 128, 48) } else { (60, 256, 160) };
    println!(
        "profile: scale={scale} samples={} features={} workers={workers} sim_nodes={nodes}",
        x.rows(),
        x.cols()
    );

    let rt = Runtime::threaded(workers);
    let dist = DsArray::from_matrix(&rt, &x, block_rows, block_cols);
    let pca = Pca::fit(&rt, &dist, Components::Count(n_comp.min(x.cols())));
    let projected = pca.transform(&rt, &dist);
    let _xp = projected.collect(&rt);
    rt.barrier();
    let stats = rt.stats();
    let trace = rt.finish();

    // -- aggregate + replay -------------------------------------------
    let profile = Profile::from_trace(&trace);
    let cluster = ClusterSpec::marenostrum4(nodes);
    let report = simulate(&trace, &cluster, &SimOptions::default());
    let sim_profile = SimProfile::from_report(&report, nodes);

    println!();
    print!("{}", stats.render_table());
    println!();
    print!("{}", profile.render_table());
    println!();
    print!("{}", sim_profile.render_table());

    // -- artifacts ----------------------------------------------------
    let doc = Value::Object(vec![
        ("workload".into(), Value::from("ecg_pca")),
        ("scale".into(), Value::String(scale)),
        ("workers".into(), Value::from(workers)),
        ("sim_nodes".into(), Value::from(nodes)),
        ("runtime".into(), stats.to_value()),
        ("profile".into(), profile.to_value()),
        ("sim".into(), sim_profile.to_value()),
    ]);
    write_artifact("out/profile.json", &doc.pretty()).expect("write out/profile.json");
    write_artifact("out/profile.trace.json", &chrome_trace(&trace))
        .expect("write out/profile.trace.json");
    write_artifact(
        "out/profile_sim.trace.json",
        &chrome_trace_schedule(&report),
    )
    .expect("write out/profile_sim.trace.json");

    if check {
        self_check(nodes);
        println!("profile: self-check ok");
    }
}

/// Re-reads the written artifacts and asserts they are usable: valid
/// JSON, non-zero task counters, per-kind percentiles present, one
/// utilization row per simulated node, and timeline events on both
/// traces. CI runs `--check` so a silent regression (e.g. counters
/// gated off, empty timeline) fails the build.
fn self_check(nodes: usize) {
    let profile = std::fs::read_to_string("out/profile.json").expect("read out/profile.json");
    let v = Value::parse(&profile).expect("out/profile.json parses");
    let total = v["runtime"]["total_tasks"].as_f64().expect("total_tasks");
    assert!(total > 0.0, "scheduler executed no tasks");
    let queued = v["runtime"]["queued_tasks"].as_f64().expect("queued_tasks");
    assert!(queued > 0.0, "no queue-wait samples recorded");
    let kinds = v["profile"]["kinds"].as_array().expect("profile.kinds");
    assert!(!kinds.is_empty(), "profile has no task kinds");
    for k in kinds {
        assert!(k.get("p50_s").and_then(Value::as_f64).is_some());
        assert!(k.get("p95_s").and_then(Value::as_f64).is_some());
    }
    let rows = v["sim"]["nodes"].as_array().expect("sim.nodes");
    assert_eq!(rows.len(), nodes, "one utilization row per node");

    for path in ["out/profile.trace.json", "out/profile_sim.trace.json"] {
        let s = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        let t = Value::parse(&s).unwrap_or_else(|e| panic!("{path} parses: {e:?}"));
        let events = t["traceEvents"].as_array().expect("traceEvents");
        let slices = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .count();
        assert!(slices > 0, "{path} has no timeline slices");
    }
}
