//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Usage:
//! ```text
//! cargo run -p bench --bin ablate --release -- --study blocks|sched|distr-depth|nesting|augment|all
//! ```
//!
//! * `blocks` — CSVM parallelism is bounded by the number of row blocks
//!   (paper §III-C1): sweep the block size and watch makespan.
//! * `sched` — FIFO vs round-robin vs locality-aware placement.
//! * `distr-depth` — RF task count vs makespan trade-off.
//! * `nesting` — submission-stall cost of the global per-epoch syncs.
//! * `augment` — the KNN collapse is caused by the near-duplicate
//!   augmented AF samples: rerun KNN without augmentation.
//! * `gradsync` — per-batch gradient synchronization (EDDL's intra-node
//!   scheme) vs the paper's per-epoch weight merging across nodes.
//! * `weak-scaling` — makespan on a fixed 4-node cluster as the dataset
//!   grows (the paper's intro: data volumes outgrow single machines).
//! * `continuum` — heterogeneous edge-cloud cluster (one fast HPC node +
//!   slow edge nodes, the paper's Fig. 1 continuum): when are the edge
//!   nodes worth using?

use bench::costs::ScaleModel;
use bench::pipeline::{prepare, run_cnn, run_cnn_flat, run_knn, run_rf, PipelineConfig};
use bench::report::{print_series, Args, Series};
use dislib::csvm::{CascadeSvm, CascadeSvmParams};
use dsarray::{DsArray, DsLabels};
use taskrt::sim::{simulate, ClusterSpec, Policy, SimOptions};
use taskrt::Runtime;

const SAMPLE_RATIO: f64 = 500.0 / 60.0;
const FEATURE_RATIO: f64 = 3269.0 / 160.0;

fn opts(policy: Policy) -> SimOptions {
    SimOptions {
        policy,
        model_transfers: true,
        duration_of: Some(ScaleModel::paper_scale(SAMPLE_RATIO, FEATURE_RATIO).duration_fn()),
        ..SimOptions::default()
    }
}

fn main() {
    let args = Args::capture();
    let study = args.get("study").unwrap_or("all").to_string();
    let cfg = PipelineConfig::default();

    eprintln!("preparing dataset + PCA...");
    let prep = prepare(&cfg);

    if study == "all" || study == "blocks" {
        // CSVM with varying row-block size: fewer, larger blocks = less
        // parallelism.
        let mut series: Series = Vec::new();
        for rb in [30usize, 60, 120, 240] {
            let rt = Runtime::new();
            let ds = DsArray::from_matrix(&rt, &prep.xp, rb, prep.xp.cols());
            let dl = DsLabels::from_slice(&rt, &prep.y, rb);
            let _ = CascadeSvm::fit(&rt, &ds, &dl, CascadeSvmParams::default());
            let trace = rt.finish();
            let rep = simulate(
                &trace,
                &ClusterSpec::marenostrum4(4),
                &opts(Policy::LocalityAware),
            );
            series.push((
                format!("rb={rb} ({} blocks)", ds.n_row_blocks()),
                rep.makespan_s,
            ));
        }
        print_series(
            "Ablation: CSVM block size (4 nodes)",
            "block size",
            "seconds (sim)",
            &series,
        );
    }

    if study == "all" || study == "sched" {
        let r = run_rf(&prep, &cfg, 0);
        let mut series: Series = Vec::new();
        for (name, policy) in [
            ("fifo", Policy::Fifo),
            ("round-robin", Policy::RoundRobin),
            ("locality", Policy::LocalityAware),
        ] {
            let mut cluster = ClusterSpec::marenostrum4(3);
            cluster.bandwidth_bps /= SAMPLE_RATIO * FEATURE_RATIO;
            let rep = simulate(&r.trace, &cluster, &opts(policy));
            series.push((
                format!("{name} ({:.1} MB moved)", rep.transferred_bytes / 1e6),
                rep.makespan_s,
            ));
        }
        print_series(
            "Ablation: scheduler policy (RF, 3 nodes)",
            "policy",
            "seconds (sim)",
            &series,
        );
    }

    if study == "all" || study == "distr-depth" {
        let mut series: Series = Vec::new();
        for dd in [0usize, 1, 2, 3] {
            let r = run_rf(&prep, &cfg, dd);
            let rep = simulate(
                &r.trace,
                &ClusterSpec::marenostrum4(3),
                &opts(Policy::LocalityAware),
            );
            series.push((
                format!("distr_depth={dd} ({} tasks)", r.trace.user_task_count()),
                rep.makespan_s,
            ));
        }
        print_series(
            "Ablation: RF distr_depth (3 nodes)",
            "distr_depth",
            "seconds (sim)",
            &series,
        );
    }

    if study == "all" || study == "nesting" {
        let flat = run_cnn_flat(&prep, &cfg, 1);
        let nested = run_cnn(&prep, &cfg, 1);
        let mut series: Series = Vec::new();
        for nodes in [1usize, 5] {
            let rep_f = simulate(
                &flat.trace,
                &ClusterSpec::cte_power(nodes),
                &opts(Policy::LocalityAware),
            );
            let rep_n = simulate(
                &nested.trace,
                &ClusterSpec::cte_power(nodes),
                &opts(Policy::LocalityAware),
            );
            series.push((format!("no nesting, {nodes} node(s)"), rep_f.makespan_s));
            series.push((format!("nesting,    {nodes} node(s)"), rep_n.makespan_s));
        }
        print_series(
            "Ablation: nesting on/off (CNN)",
            "config",
            "seconds (sim)",
            &series,
        );
        println!("  nesting only pays off with nodes to spare (paper Fig. 12)");
    }

    if study == "all" || study == "gradsync" {
        use linalg::Matrix;
        use nnet::{
            train_data_parallel, train_epoch_gradsync, Network, ParallelConfig, TrainParams,
        };
        use taskrt::Runtime;

        let n = prep.xp.rows().min(128);
        let x = prep.xp.slice_rows(0, n);
        let y = prep.y[..n].to_vec();
        let pcfg = ParallelConfig {
            epochs: 2,
            workers: 4,
            gpus_per_task: 1,
            train: TrainParams {
                lr: 0.02,
                momentum: 0.9,
                batch_size: 8,
                seed: 1,
            },
        };
        let net0 = Network::afib_cnn(x.cols(), 1);

        // Per-epoch weight merging (the paper's inter-node scheme).
        let rt_epoch = Runtime::new();
        let _ = train_data_parallel(&rt_epoch, net0.clone(), &x, &y, &pcfg);
        let t_epoch = rt_epoch.finish();

        // Per-batch gradient sync (EDDL's intra-node scheme) as tasks.
        let rt_grad = Runtime::new();
        let shards: Vec<(Matrix, Vec<u8>)> = (0..pcfg.workers)
            .filter_map(|w| {
                let per = n.div_ceil(pcfg.workers);
                let lo = w * per;
                let hi = ((w + 1) * per).min(n);
                (lo < hi).then(|| (x.slice_rows(lo, hi), y[lo..hi].to_vec()))
            })
            .collect();
        let shard_rows: Vec<usize> = shards.iter().map(|(m, _)| m.rows()).collect();
        let handles: Vec<_> = shards.into_iter().map(|s| rt_grad.put(s)).collect();
        let mut model = rt_grad.put(net0);
        for e in 0..pcfg.epochs as u64 {
            model = train_epoch_gradsync(&rt_grad, model, &handles, &shard_rows, &pcfg, e);
        }
        let _ = rt_grad.wait(model);
        let t_grad = rt_grad.finish();

        println!("\n== Ablation: per-epoch weight merge vs per-batch gradient sync ==");
        let cluster = taskrt::sim::ClusterSpec::cte_power(1);
        for (name, trace) in [
            ("per-epoch merge", &t_epoch),
            ("per-batch grad sync", &t_grad),
        ] {
            let rep = simulate(trace, &cluster, &opts(Policy::LocalityAware));
            println!(
                "  {name:>20}: {:>5} tasks, simulated {:.2}s on one 4-GPU node",
                trace.user_task_count(),
                rep.makespan_s
            );
        }
        println!("  (per-batch sync multiplies task/communication count — why the paper keeps it intra-node)");
    }

    if study == "all" || study == "continuum" {
        use std::sync::Arc;
        // The recorded RF workflow on a continuum: node 0 is an HPC node
        // at full speed; the others are edge-class devices.
        let r = run_rf(&prep, &cfg, 0);
        let mut series: Series = Vec::new();
        for (name, edge_nodes, edge_speed) in [
            ("cloud only (1 node)", 0usize, 1.0f64),
            ("cloud + 3 edge @ 0.5x", 3, 0.5),
            ("cloud + 3 edge @ 0.1x", 3, 0.1),
        ] {
            let cluster = ClusterSpec::marenostrum4(1 + edge_nodes);
            let sim_opts = SimOptions {
                node_speed: Some(Arc::new(move |n| if n == 0 { 1.0 } else { edge_speed })),
                ..opts(Policy::LocalityAware)
            };
            let rep = simulate(&r.trace, &cluster, &sim_opts);
            series.push((name.to_string(), rep.makespan_s));
        }
        print_series(
            "Ablation: edge-cloud continuum (RF, heterogeneous node speeds)",
            "cluster",
            "seconds (sim)",
            &series,
        );
        println!("  slow edge nodes help until stragglers dominate the final wave");
    }

    if study == "all" || study == "weak-scaling" {
        use dislib::csvm::{CascadeSvm, CascadeSvmParams};
        let mut series: Series = Vec::new();
        for mult in [1usize, 2, 4] {
            // Tile the dataset to simulate growth; block size fixed so
            // the task count grows with the data.
            let mut x = prep.xp.clone();
            for _ in 1..mult {
                x = x.vstack(&prep.xp);
            }
            let mut y = Vec::new();
            for _ in 0..mult {
                y.extend_from_slice(&prep.y);
            }
            let rt = Runtime::new();
            let ds = DsArray::from_matrix(&rt, &x, 60, x.cols());
            let dl = DsLabels::from_slice(&rt, &y, 60);
            let _ = CascadeSvm::fit(&rt, &ds, &dl, CascadeSvmParams::default());
            let trace = rt.finish();
            let rep = simulate(
                &trace,
                &ClusterSpec::marenostrum4(4),
                &opts(Policy::LocalityAware),
            );
            series.push((
                format!("{}x data ({} tasks)", mult, trace.user_task_count()),
                rep.makespan_s,
            ));
        }
        print_series(
            "Ablation: weak scaling (CSVM, 4 nodes)",
            "dataset",
            "seconds (sim)",
            &series,
        );
        println!(
            "  task-based decomposition absorbs data growth until the cascade depth dominates"
        );
    }

    if study == "all" || study == "augment" {
        // With augmentation (default prep) vs without.
        let with_aug = run_knn(&prep, &cfg);
        let cfg_no = PipelineConfig {
            augment: false,
            ..cfg
        };
        let prep_no = prepare(&cfg_no);
        let without = run_knn(&prep_no, &cfg_no);
        println!("\n== Ablation: augmentation and the KNN failure mode ==");
        let (a, b) = (with_aug.pooled(), without.pooled());
        println!(
            "  with augmentation:    acc {:.1}%  recall {:.3}  precision {:.3}  (AF predicted {:.1}% of the time)",
            a.accuracy() * 100.0,
            a.recall(),
            a.precision(),
            (a.tp + a.fp) as f64 / a.total() as f64 * 100.0
        );
        println!(
            "  without augmentation: acc {:.1}%  recall {:.3}  precision {:.3}  (AF predicted {:.1}% of the time)",
            b.accuracy() * 100.0,
            b.recall(),
            b.precision(),
            (b.tp + b.fp) as f64 / b.total() as f64 * 100.0
        );
    }
}
