//! Reproduces **Table I**: average 5-fold confusion matrices and
//! accuracy for CSVM (a), KNN (b), RF (c) and CNN (d).
//!
//! Usage:
//! ```text
//! cargo run -p bench --bin table1 --release [-- --algo csvm|knn|rf|cnn|all] [--seed N]
//! ```

use bench::pipeline::{prepare, run_cnn, run_csvm, run_knn, run_rf, PipelineConfig};
use bench::report::{print_confusion, write_artifact, Args};

/// Paper-reported Table I cells `[[tp, fn], [fp, tn]]` fractions.
const PAPER_CSVM: [[f64; 2]; 2] = [[0.379, 0.125], [0.125, 0.369]];
const PAPER_KNN: [[f64; 2]; 2] = [[0.498, 0.001], [0.490, 0.009]];
const PAPER_RF: [[f64; 2]; 2] = [[0.456, 0.048], [0.071, 0.424]];
const PAPER_CNN: [[f64; 2]; 2] = [[0.454, 0.066], [0.009, 0.469]];

fn main() {
    let args = Args::capture();
    let algo = args.get("algo").unwrap_or("all").to_string();
    let mut cfg = PipelineConfig::default();
    cfg.seed = args.get_or("seed", cfg.seed);

    eprintln!(
        "building dataset + STFT features + distributed PCA ({:?} scale)...",
        cfg.scale
    );
    let prep = prepare(&cfg);
    eprintln!(
        "dataset: {} samples x {} raw features -> {} PCA components",
        prep.xp.rows(),
        prep.raw_features,
        prep.xp.cols()
    );

    let mut json = Vec::new();
    if algo == "all" || algo == "csvm" {
        let r = run_csvm(&prep, &cfg);
        print_confusion(
            "Table Ia — CascadeSVM",
            &r.pooled(),
            Some(PAPER_CSVM),
            Some(0.749),
        );
        json.push(row(&r));
    }
    if algo == "all" || algo == "knn" {
        let r = run_knn(&prep, &cfg);
        print_confusion(
            "Table Ib — KNN (StandardScaler + k=5)",
            &r.pooled(),
            Some(PAPER_KNN),
            Some(0.52),
        );
        json.push(row(&r));
    }
    if algo == "all" || algo == "rf" {
        let r = run_rf(&prep, &cfg, 0);
        print_confusion(
            "Table Ic — RandomForest (40 estimators)",
            &r.pooled(),
            Some(PAPER_RF),
            Some(0.868),
        );
        json.push(row(&r));
    }
    if algo == "all" || algo == "cnn" {
        let r = run_cnn(&prep, &cfg, 1);
        print_confusion(
            "Table Id — CNN (2xConv1D(32) + Dense(32))",
            &r.pooled(),
            Some(PAPER_CNN),
            Some(0.90),
        );
        json.push(row(&r));
    }

    let payload = format!("[{}]", json.join(","));
    write_artifact("out/table1.json", &payload).expect("artifact");
}

fn row(r: &bench::pipeline::AlgoResult) -> String {
    let cm = r.pooled();
    format!(
        "{{\"algo\":\"{}\",\"accuracy\":{:.4},\"precision\":{:.4},\"recall\":{:.4},\"f1\":{:.4},\"tp\":{},\"fp\":{},\"fn\":{},\"tn\":{}}}",
        r.name,
        cm.accuracy(),
        cm.precision(),
        cm.recall(),
        cm.f1(),
        cm.tp,
        cm.fp,
        cm.fn_,
        cm.tn
    )
}
