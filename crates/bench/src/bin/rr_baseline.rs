//! Measures the paper's §II motivation: "RR interval-based methods are
//! limited when ... AF takes place with regular ventricular rates."
//!
//! Compares the classical RR-irregularity detector (`ecg::hrv`) against
//! the paper's STFT + RandomForest pipeline on two cohorts:
//!
//! * **textbook** — canonical rhythms (`atypical_fraction = 0`), where
//!   RR irregularity alone almost solves the problem;
//! * **atypical** — every AF recording has a fairly regular ventricular
//!   response and every Normal recording has sinus-arrhythmia-like
//!   variability (`atypical_fraction = 1`), the regime the paper says
//!   breaks RR methods. The time–frequency pipeline still sees the
//!   absent P waves and the 4–9 Hz f-waves.
//!
//! Usage: `cargo run -p bench --bin rr_baseline --release`

use bench::report::{print_series, Args};
use dislib::model_selection::cross_validate;
use dislib::rf::{build_tree, RfParams, Tree};
use dislib::{ConfusionMatrix, KFold};
use ecg::features::build_design_matrix;
use ecg::hrv::RrDetector;
use ecg::synth::{generate, Class, EcgConfig};
use linalg::stft::SpectrogramConfig;

fn cohort(atypical: f64, seed: u64) -> Vec<ecg::Recording> {
    let cfg = EcgConfig {
        min_duration_s: 15.0,
        max_duration_s: 20.0,
        noise_sd: 0.05,
        atypical_fraction: atypical,
        ..EcgConfig::default()
    };
    let mut recs = Vec::new();
    for i in 0..60 {
        recs.push(generate(&cfg, Class::Normal, seed + i));
    }
    for i in 0..60 {
        recs.push(generate(&cfg, Class::Af, seed + 10_000 + i));
    }
    recs
}

fn rr_accuracy(recs: &[ecg::Recording]) -> ConfusionMatrix {
    let det = RrDetector::default();
    let truth: Vec<u8> = recs.iter().map(|r| r.class.label()).collect();
    let preds: Vec<u8> = recs.iter().map(|r| det.predict(r)).collect();
    ConfusionMatrix::from_labels(&truth, &preds)
}

fn ml_accuracy(recs: &[ecg::Recording], seed: u64) -> ConfusionMatrix {
    let stft = SpectrogramConfig {
        nperseg: 128,
        noverlap: 32,
        fs: 300.0,
    };
    let (x, y, _) = build_design_matrix(recs, &stft, Some(50.0));
    let kf = KFold {
        k: 5,
        shuffle: true,
        seed,
    };
    let params = RfParams {
        n_estimators: 30,
        seed,
        ..Default::default()
    };
    let folds = cross_validate(&x, &y, &kf, |xtr, ytr, xte| {
        let trees: Vec<Tree> = (0..params.n_estimators)
            .map(|e| build_tree(xtr, ytr, &params, e as u64))
            .collect();
        (0..xte.rows())
            .map(|r| {
                let votes: f64 = trees
                    .iter()
                    .map(|t| f64::from(t.predict_one(xte.row(r))))
                    .sum();
                u8::from(votes * 2.0 > trees.len() as f64)
            })
            .collect()
    });
    folds
        .iter()
        .fold(ConfusionMatrix::default(), |acc, f| acc.merged(f))
}

fn main() {
    let args = Args::capture();
    let seed = args.get_or("seed", 7u64);

    let mut series = Vec::new();
    for (name, atypical) in [
        ("textbook rhythms", 0.0),
        ("regular-rate AF / irregular Normal", 1.0),
    ] {
        eprintln!("evaluating cohort: {name}...");
        let recs = cohort(atypical, seed);
        let rr = rr_accuracy(&recs);
        let ml = ml_accuracy(&recs, seed);
        series.push((format!("{name}: RR detector"), rr.accuracy() * 100.0));
        series.push((format!("{name}: STFT + RF"), ml.accuracy() * 100.0));
        println!(
            "\n{name}: RR detector recall {:.2} / precision {:.2}; STFT+RF recall {:.2} / precision {:.2}",
            rr.recall(),
            rr.precision(),
            ml.recall(),
            ml.precision()
        );
    }
    print_series(
        "RR-interval baseline vs the paper's time-frequency pipeline",
        "method",
        "accuracy (%)",
        &series,
    );
    println!("\npaper §II: \"RR interval-based methods are limited ... when AF takes place");
    println!("with regular ventricular rates\" — the time-frequency pipeline is not.");
}
