//! Reproduces **Fig. 11**: training time of the classic ML algorithms
//! versus core count on the (simulated) MareNostrum 4 cluster.
//!
//! The workflow executes once at `small` scale to record its task graph
//! and per-task durations; the graph is then replayed by the
//! discrete-event simulator at 1–6 nodes (48–288 cores) with durations
//! lifted to paper scale by the complexity-based cost model
//! (`bench::costs`).
//!
//! Block sizes are chosen so the recorded graphs have the **same
//! parallel width as the paper's**: CSVM uses ~20 row blocks per fold
//! (paper: 10308 rows / 500-row blocks ≈ 21) and KNN ~40 (250-row
//! blocks).
//!
//! Usage:
//! ```text
//! cargo run -p bench --bin fig11 --release [-- --algo csvm|knn|rf|all] [--max-nodes N]
//! ```

use bench::costs::ScaleModel;
use bench::pipeline::{prepare, run_csvm, run_knn, run_rf, AlgoResult, PipelineConfig};
use bench::report::{print_series, write_artifact, Args, Series};
use taskrt::sim::{simulate, ClusterSpec, Policy, SimOptions};

/// Paper features after PCA / ours.
const FEATURE_RATIO: f64 = 3269.0 / 160.0;

fn sweep(result: &AlgoResult, max_nodes: usize, model: &ScaleModel, element_ratio: f64) -> Series {
    let mut series = Vec::new();
    for nodes in 1..=max_nodes {
        // Scale transfers to paper-size data by shrinking bandwidth by
        // the element ratio (equivalent to growing every payload).
        let mut cluster = ClusterSpec::marenostrum4(nodes);
        cluster.bandwidth_bps /= element_ratio;
        let opts = SimOptions {
            policy: Policy::LocalityAware,
            model_transfers: true,
            duration_of: Some(model.duration_fn()),
            ..SimOptions::default()
        };
        let rep = simulate(&result.trace, &cluster, &opts);
        series.push((format!("{}", cluster.total_cores()), rep.makespan_s));
    }
    series
}

fn speedup_note(series: &Series) {
    if let (Some(first), Some(last)) = (series.first(), series.last()) {
        let best = series.iter().map(|(_, t)| *t).fold(f64::INFINITY, f64::min);
        println!(
            "  speedup {}c -> best: {:.2}x; {}c -> {}c: {:.2}x",
            first.0,
            first.1 / best,
            first.0,
            last.0,
            first.1 / last.1
        );
    }
}

fn main() {
    let args = Args::capture();
    let algo = args.get("algo").unwrap_or("all").to_string();
    let max_nodes = args.get_or("max-nodes", 6usize);

    // Fine-grained blocks so the recorded graph has the paper's width;
    // Table I (accuracy) uses the default, coarser configuration.
    let cfg = PipelineConfig {
        block_rows: 16,
        ..PipelineConfig::default()
    };

    eprintln!("preparing dataset + PCA...");
    let prep = prepare(&cfg);
    let mut artifacts = Vec::new();

    if algo == "all" || algo == "csvm" {
        eprintln!("running CSVM workflow (records the task graph)...");
        let r = run_csvm(&prep, &cfg);
        // Paper: 500-row blocks; ours: 16-row blocks. Per-task durations
        // are set structurally (SMO on one 500x3269 block ~ 30 s; a
        // cascade merge retrains on the ~2x300 surviving support
        // vectors ~ 11 s) because the small-scale SV retention rate
        // would otherwise distort the fit/merge cost ratio.
        let sample_ratio = 500.0 / 16.0;
        let model = ScaleModel::paper_scale(sample_ratio, FEATURE_RATIO)
            .with_fixed("csvm_fit", 30.0)
            .with_fixed("csvm_refit", 30.0)
            .with_fixed("csvm_merge", 11.0)
            .with_fixed("csvm_final", 15.0)
            .with_fixed("csvm_predict", 2.0)
            .with_fixed("csvm_score", 2.0)
            .with_fixed("ds_load", 0.4)
            .with_fixed("ds_merge_band", 0.4);
        let s = sweep(&r, max_nodes, &model, sample_ratio * FEATURE_RATIO);
        print_series(
            "Fig. 11a — CSVM training time (6x8-core tasks per node)",
            "cores",
            "seconds (sim)",
            &s,
        );
        speedup_note(&s);
        println!(
            "  tasks: {} user tasks, max width {}",
            r.trace.user_task_count(),
            r.trace.max_width()
        );
        artifacts.push(series_json("csvm", &s));
    }
    if algo == "all" || algo == "knn" {
        eprintln!("running KNN workflow...");
        let r = run_knn(&prep, &cfg);
        // Paper: 250-row blocks; ours: 8-row blocks (half of CSVM's, as
        // in the paper).
        let sample_ratio = 250.0 / 8.0;
        let model = ScaleModel::paper_scale(sample_ratio, FEATURE_RATIO);
        let s = sweep(&r, max_nodes, &model, sample_ratio * FEATURE_RATIO);
        print_series(
            "Fig. 11b — StandardScaler + KNN time (12x4-core tasks per node)",
            "cores",
            "seconds (sim)",
            &s,
        );
        speedup_note(&s);
        println!(
            "  tasks: {} user tasks, max width {}",
            r.trace.user_task_count(),
            r.trace.max_width()
        );
        artifacts.push(series_json("knn", &s));
    }
    if algo == "all" || algo == "rf" {
        eprintln!("running RF workflow...");
        let r = run_rf(&prep, &cfg, 0);
        // RF tasks see the whole fold (paper: ~8246 samples; ours ~320).
        // Tree-construction tasks arenear-uniform in cost (same bootstrap
        // size), which is what makes 2 and 3 nodes take the same number
        // of waves while 3 nodes pays extra data distribution — the
        // paper's anomaly.
        let sample_ratio = 8246.0 / 320.0;
        let model = ScaleModel::paper_scale(sample_ratio, FEATURE_RATIO)
            .with_fixed("rf_build_tree", 10.0)
            .with_fixed("rf_predict", 1.0)
            .with_fixed("rf_reduce", 0.2)
            .with_fixed("rf_average", 0.1)
            .with_fixed("rf_vote", 0.1);
        let s = sweep(&r, max_nodes, &model, sample_ratio * FEATURE_RATIO);
        print_series(
            "Fig. 11c — RandomForest training time (40 estimators)",
            "cores",
            "seconds (sim)",
            &s,
        );
        speedup_note(&s);
        // The paper's anomaly: compare 2 vs 3 nodes explicitly.
        if s.len() >= 3 {
            let (t2, t3) = (s[1].1, s[2].1);
            println!(
                "  2-node vs 3-node: {:.2}s vs {:.2}s ({})",
                t2,
                t3,
                if t3 >= t2 * 0.98 {
                    "no improvement / slight regression — matches the paper"
                } else {
                    "improved"
                }
            );
        }
        artifacts.push(series_json("rf", &s));
    }

    write_artifact("out/fig11.json", &format!("[{}]", artifacts.join(","))).expect("artifact");
}

fn series_json(name: &str, s: &Series) -> String {
    let pts: Vec<String> = s
        .iter()
        .map(|(x, y)| format!("{{\"cores\":{x},\"seconds\":{y:.3}}}"))
        .collect();
    format!("{{\"algo\":\"{name}\",\"points\":[{}]}}", pts.join(","))
}
