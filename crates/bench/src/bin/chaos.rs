//! Chaos harness: prove the fault-tolerance layer end to end.
//!
//! Three experiments, all deterministic under a fixed `--seed`:
//!
//! 1. **Retry correctness** — a distributed ds-array workload (column
//!    sums + Gram matrix + a tree reduction) runs fault-free, then
//!    again with a [`taskrt::FaultPlan`] that panics every retryable
//!    task kind on its first attempt (well over 10% of all tasks). The
//!    retried run must produce *bit-identical* results, and a second
//!    faulted run must match exactly (seeded determinism).
//! 2. **Give-up semantics** — a task whose injected fault outlives its
//!    retry budget must fail the workflow with an error naming the task
//!    and its attempt count.
//! 3. **Node-failure replay** — the recorded fault-free trace replays
//!    on a simulated MareNostrum-4 partition, healthy vs. one node
//!    lost at 50% of the healthy makespan. The degraded makespan must
//!    be strictly larger, and the degraded replay deterministic.
//!
//! Writes `out/chaos.json`; `--check` asserts all of the above and
//! exits non-zero on any violation (the CI chaos job runs this).
//!
//! Usage: `cargo run --release -p bench --bin chaos --
//! [--scale small|full] [--workers N] [--nodes N] [--seed N] [--check]`

use bench::report::{write_artifact, Args};
use dsarray::{tree_reduce, DsArray};
use linalg::Matrix;
use taskrt::fault::INJECTED_PANIC;
use taskrt::json::Value;
use taskrt::sim::{simulate, ClusterSpec, SimOptions};
use taskrt::{FaultPlan, RetryPolicy, Runtime, Trace};

/// Kinds the workload submits with a `Retry` policy — the injection
/// targets. Non-retryable kinds (loads, INOUT reductions) must stay
/// healthy or the workflow would correctly fail.
const RETRYABLE_KINDS: &[&str] = &["ds_colsum", "ds_gram", "chaos_reduce"];

/// Silences the panic spam from injected faults: `catch_unwind` catches
/// the payloads, but the default hook prints first. Real (unexpected)
/// panics still print.
fn install_quiet_panic_hook() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| info.payload().downcast_ref::<String>().cloned())
            .unwrap_or_default();
        if msg.contains(INJECTED_PANIC) {
            return;
        }
        default_hook(info);
    }));
}

/// Deterministic input matrix (no RNG: a fixed arithmetic pattern).
fn input_matrix(rows: usize, cols: usize) -> Matrix {
    let data: Vec<f64> = (0..rows * cols)
        .map(|i| {
            let (r, c) = (i / cols, i % cols);
            ((r * 31 + c * 17) % 101) as f64 / 7.0 - 5.0
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// The workload under test: block the matrix, take column sums and the
/// Gram matrix (both submit `Retry` tasks), then tree-reduce per-band
/// traces of the Gram partials. Returns every result bit plus the
/// recorded trace.
fn workload(workers: usize, rows: usize, cols: usize, bs: usize) -> RunResult {
    run_workload(workers, rows, cols, bs, None)
}

/// `(result bits, trace, total tasks, counter retries, journal retry
/// events, journal dropped)` — the last two from the live telemetry
/// journal, cross-checked against the scheduler counter in `--check`.
type RunResult = (Vec<u64>, Trace, u64, u64, u64, u64);

fn run_workload(
    workers: usize,
    rows: usize,
    cols: usize,
    bs: usize,
    plan: Option<FaultPlan>,
) -> RunResult {
    let rt = Runtime::threaded(workers);
    rt.set_fault_plan(plan);
    let m = input_matrix(rows, cols);
    let dist = DsArray::from_matrix(&rt, &m, bs, bs);
    let sums = dist.col_sums(&rt);
    let gram = dist.gram(&rt);
    // An extra explicit Retry cascade over per-band row sums.
    let partials: Vec<_> = dist
        .row_bands(&rt)
        .into_iter()
        .map(|band| {
            rt.task("chaos_band_sum")
                .run1(band, |m: &Matrix| m.as_slice().iter().sum::<f64>())
        })
        .collect();
    let total = tree_reduce(&rt, "chaos_reduce", &partials, |a, b| a + b);

    let mut bits: Vec<u64> = Vec::new();
    bits.extend(rt.wait(sums).iter().map(|v| v.to_bits()));
    bits.extend(rt.wait(gram).as_slice().iter().map(|v| v.to_bits()));
    bits.push(rt.wait(total).to_bits());
    rt.barrier();
    let stats = rt.stats();
    let (journal_retries, journal_dropped) = rt
        .telemetry()
        .map(|t| {
            let retries = t
                .journal()
                .snapshot()
                .iter()
                .filter(|e| e.kind == taskrt::EventKind::Retry)
                .count() as u64;
            (retries, t.journal().dropped())
        })
        .unwrap_or((0, 0));
    (
        bits,
        rt.finish(),
        stats.total_tasks(),
        stats.retries,
        journal_retries,
        journal_dropped,
    )
}

fn main() {
    let args = Args::capture();
    let scale = args.get("scale").unwrap_or("small").to_string();
    let small = scale == "small";
    let workers: usize = args.get_or("workers", 4);
    let nodes: usize = args.get_or("nodes", 4);
    let seed: u64 = args.get_or("seed", 0xc4a0_5eed);
    let check = args.has("check");
    let (rows, cols, bs) = if small { (96, 64, 16) } else { (384, 256, 32) };

    install_quiet_panic_hook();
    println!("chaos: scale={scale} workers={workers} sim_nodes={nodes} seed={seed:#x}");

    // -- 1: fault-free baseline vs. injected-fault retry runs ---------
    let (clean_bits, trace, clean_tasks, _, _, _) = workload(workers, rows, cols, bs);
    let mut plan = FaultPlan::new(seed);
    for kind in RETRYABLE_KINDS {
        plan = plan.panic_kind(kind, 1);
    }
    let (fault_bits, _, fault_tasks, retries, journal_retries, journal_dropped) =
        run_workload(workers, rows, cols, bs, Some(plan.clone()));
    let (fault_bits2, _, _, retries2, _, _) = run_workload(workers, rows, cols, bs, Some(plan));
    let fault_frac = retries as f64 / fault_tasks as f64;
    let identical = clean_bits == fault_bits;
    let deterministic = fault_bits == fault_bits2 && retries == retries2;
    println!(
        "retry: {clean_tasks} tasks, {retries} injected faults ({:.1}% of tasks), \
         bit-identical={identical} deterministic={deterministic}",
        fault_frac * 100.0
    );
    println!(
        "telemetry: {journal_retries} retry events journaled ({journal_dropped} events dropped)"
    );

    // -- 2: retry exhaustion fails with a named-task error ------------
    let giveup_msg = {
        let rt = Runtime::threaded(2);
        rt.set_fault_plan(Some(FaultPlan::new(seed).panic_kind("doomed", u32::MAX)));
        let x = rt.put(1.0f64);
        let h = rt
            .task("doomed")
            .retry(RetryPolicy::new(3).backoff(1e-6, 2.0))
            .run1(x, |v| v + 1.0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = rt.wait(h);
        }));
        match caught {
            Err(e) => e
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default(),
            Ok(_) => String::new(),
        }
    };
    let named_failure = giveup_msg.contains("'doomed'") && giveup_msg.contains("3 attempts");
    println!("giveup: named_failure={named_failure} msg={giveup_msg:?}");

    // -- 3: DES replay, healthy vs. one node lost at t=50% ------------
    // Locality-aware placement concentrates this workload on node 0, so
    // that is the node whose loss actually hurts: its in-flight tasks
    // die and its produced blocks must be rebuilt on the survivors.
    let healthy_cluster = ClusterSpec::marenostrum4(nodes);
    let opts = SimOptions::default();
    let healthy = simulate(&trace, &healthy_cluster, &opts);
    let fail_at = healthy.makespan_s * 0.5;
    let degraded_cluster = ClusterSpec::marenostrum4(nodes).with_failure(0, fail_at);
    let degraded = simulate(&trace, &degraded_cluster, &opts);
    let degraded2 = simulate(&trace, &degraded_cluster, &opts);
    let degradation = degraded.makespan_s / healthy.makespan_s - 1.0;
    println!(
        "sim: healthy {:.4}s, node 0 lost at t={:.4}s -> {:.4}s (+{:.1}%), \
         {} runs lost, {} re-executions",
        healthy.makespan_s,
        fail_at,
        degraded.makespan_s,
        degradation * 100.0,
        degraded.lost_tasks,
        degraded.reexecutions
    );

    // -- artifact -----------------------------------------------------
    let doc = Value::Object(vec![
        ("workload".into(), Value::from("dsarray_reductions")),
        ("scale".into(), Value::String(scale)),
        ("workers".into(), Value::from(workers)),
        ("seed".into(), Value::from(seed)),
        (
            "retry".into(),
            Value::Object(vec![
                ("tasks".into(), Value::from(fault_tasks)),
                ("injected_faults".into(), Value::from(retries)),
                ("fault_fraction".into(), Value::from(fault_frac)),
                ("bit_identical".into(), Value::from(identical)),
                ("deterministic".into(), Value::from(deterministic)),
                ("journal_retry_events".into(), Value::from(journal_retries)),
                ("journal_dropped".into(), Value::from(journal_dropped)),
            ]),
        ),
        (
            "giveup".into(),
            Value::Object(vec![
                ("named_failure".into(), Value::from(named_failure)),
                ("message".into(), Value::String(giveup_msg.clone())),
            ]),
        ),
        (
            "sim".into(),
            Value::Object(vec![
                ("nodes".into(), Value::from(nodes)),
                ("healthy_makespan_s".into(), Value::from(healthy.makespan_s)),
                ("fail_at_s".into(), Value::from(fail_at)),
                (
                    "degraded_makespan_s".into(),
                    Value::from(degraded.makespan_s),
                ),
                ("degradation_frac".into(), Value::from(degradation)),
                ("lost_tasks".into(), Value::from(degraded.lost_tasks)),
                ("reexecutions".into(), Value::from(degraded.reexecutions)),
            ]),
        ),
    ]);
    write_artifact("out/chaos.json", &doc.pretty()).expect("write out/chaos.json");

    if check {
        assert!(
            fault_frac >= 0.10,
            "faults hit {:.1}% of tasks, need >= 10%",
            fault_frac * 100.0
        );
        assert!(identical, "retried results diverged from fault-free run");
        assert!(deterministic, "seeded fault runs diverged from each other");
        // The journal must tell the same story as the scheduler
        // counter: one Retry event per retried attempt (exactly, while
        // nothing overflowed; at least one under overflow).
        if journal_dropped == 0 {
            assert_eq!(
                journal_retries, retries,
                "journal retry events must match the retry counter"
            );
        } else {
            assert!(journal_retries > 0, "no retry events survived in journal");
        }
        assert!(
            named_failure,
            "give-up error must name the task and attempt count, got: {giveup_msg:?}"
        );
        assert!(
            degraded.makespan_s > healthy.makespan_s,
            "node failure must strictly increase makespan ({} vs {})",
            degraded.makespan_s,
            healthy.makespan_s
        );
        assert_eq!(
            degraded.makespan_s, degraded2.makespan_s,
            "degraded replay must be deterministic"
        );
        assert!(degraded.lost_tasks > 0, "the lost node had work in flight");
        println!("chaos: self-check ok");
    }
}
