//! Live-telemetry harness: run the PCA pipeline on the threaded
//! scheduler with the full `taskrt::telemetry` layer on, and export
//! every live-observability artifact.
//!
//! Where `profile` reproduces the paper's *post-mortem* Extrae/Paraver
//! workflow, this bin exercises the *in-flight* half: the lock-free
//! event journal, the latency histograms and metrics registry
//! (Prometheus + JSON export), the online straggler/critical-path
//! analyzer, and the real-vs-DES divergence report. Produces, under
//! `out/`:
//!
//! * `telemetry.json` — registry snapshot (with linalg pool counters
//!   folded in), journal events, straggler report, divergence report,
//!   and the event-schema identity check.
//! * `telemetry.prom` — the same registry in Prometheus text
//!   exposition format (validated by `--check`).
//! * `telemetry.trace.json` — Chrome-trace timeline with the
//!   analyzer's straggler verdicts as `instant` markers (Perfetto
//!   droplets).
//!
//! Usage: `cargo run --release -p bench --bin telemetry --
//! [--scale small|full] [--workers N] [--nodes N] [--straggler-k K]
//! [--watch] [--interval-ms MS] [--check]`
//!
//! `--watch` prints periodic registry snapshots while the pipeline is
//! running (the live-monitoring mode). `--check` re-parses the written
//! artifacts and asserts the CI invariants: the Prometheus snapshot
//! validates, the divergence report is present, and the DES-emitted
//! events are schema-identical to the threaded runtime's.

use std::collections::BTreeSet;
use std::sync::mpsc;
use std::time::Duration;

use bench::report::{write_artifact, Args};
use dislib::pca::{Components, Pca};
use dsarray::DsArray;
use ecg::{Dataset, DatasetSpec, Scale};
use taskrt::json::Value;
use taskrt::obs::chrome_trace_stragglers;
use taskrt::sim::{simulate, ClusterSpec, SimOptions};
use taskrt::telemetry::{divergence, validate_prometheus, EventKind, StragglerReport, EXTERNAL};
use taskrt::Runtime;

fn main() {
    let args = Args::capture();
    let scale = args.get("scale").unwrap_or("small").to_string();
    let small = scale == "small";
    let default_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8);
    let workers: usize = args.get_or("workers", default_workers);
    let nodes: usize = args.get_or("nodes", 4);
    let straggler_k: f64 = args.get_or("straggler-k", 3.0);
    let watch = args.has("watch");
    let interval_ms: u64 = args.get_or("interval-ms", 250);
    let check = args.has("check");

    // -- workload: dataset load + distributed PCA (paper §III-B) ------
    let mut spec = DatasetSpec::at_scale(Scale::Small).with_seed(2017);
    if small {
        spec.n_normal = 40;
        spec.n_af = 6;
        spec.ecg.max_duration_s = 11.0;
    }
    let ds = Dataset::build(&spec);
    let x = if small {
        ds.x.slice_cols(0, ds.x.cols().min(320))
    } else {
        ds.x
    };
    let (block_rows, block_cols, n_comp) = if small { (16, 128, 48) } else { (60, 256, 160) };
    println!(
        "telemetry: scale={scale} samples={} features={} workers={workers} sim_nodes={nodes}",
        x.rows(),
        x.cols()
    );

    let rt = Runtime::threaded(workers);

    // Forward linalg buffer-pool events into the journal's external
    // shard: pool hits/misses happen on worker threads inside kernel
    // bodies, outside the scheduler's own instrumentation points.
    {
        let rt = rt.clone();
        linalg::pool::set_observer(Some(Box::new(move |hit, bytes| {
            if let Some(t) = rt.telemetry() {
                let kind = if hit {
                    EventKind::PoolHit
                } else {
                    EventKind::PoolMiss
                };
                t.journal().emit(EXTERNAL, kind, None, bytes, 0);
            }
        })));
    }
    let (pool_hits0, pool_misses0, pool_bytes0) = linalg::pool::global_stats();

    // The pipeline runs on its own thread so `--watch` can print live
    // registry snapshots from the driver — the "snapshotable at any
    // time without stopping workers" property, demonstrated.
    let (done_tx, done_rx) = mpsc::channel::<()>();
    let pipeline = {
        let rt = rt.clone();
        let x = x.clone();
        std::thread::spawn(move || {
            let dist = DsArray::from_matrix(&rt, &x, block_rows, block_cols);
            let pca = Pca::fit(&rt, &dist, Components::Count(n_comp.min(x.cols())));
            let projected = pca.transform(&rt, &dist);
            let _xp = projected.collect(&rt);
            rt.barrier();
            let _ = done_tx.send(());
        })
    };
    loop {
        match done_rx.recv_timeout(Duration::from_millis(interval_ms)) {
            Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => break,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if watch {
                    print_watch_line(&rt);
                }
            }
        }
    }
    pipeline.join().expect("pipeline thread");
    linalg::pool::set_observer(None);

    let stats = rt.stats();
    let (queue_wait, run_time, attempt) = rt.latency_histograms().expect("metrics on");
    let journal_events = rt.journal_events();
    let journal_dropped = rt.journal_dropped();
    let journal_emitted = rt.telemetry().expect("metrics on").journal().emitted();
    let mut registry = rt.registry();
    let trace = rt.finish();

    // -- satellite: pool counters through the registry ----------------
    let (pool_hits, pool_misses, pool_bytes) = linalg::pool::global_stats();
    registry.counter(
        "taskrt_pool_hits_total",
        "linalg buffer-pool acquisitions served from a retained buffer",
        pool_hits - pool_hits0,
    );
    registry.counter(
        "taskrt_pool_misses_total",
        "linalg buffer-pool acquisitions that fell through to the allocator",
        pool_misses - pool_misses0,
    );
    registry.counter(
        "taskrt_pool_reused_bytes_total",
        "bytes served from retained buffers instead of fresh allocations",
        pool_bytes - pool_bytes0,
    );

    // -- straggler / critical-path analysis ---------------------------
    let stragglers = StragglerReport::from_trace(&trace, straggler_k, 8);
    registry.counter(
        "taskrt_stragglers_total",
        "tasks flagged slower than k x their kind's running median",
        stragglers.stragglers.len() as u64,
    );

    // -- DES replay + divergence --------------------------------------
    let cluster = ClusterSpec::marenostrum4(nodes);
    let report = simulate(&trace, &cluster, &SimOptions::default());
    let real_events = trace.events();
    let sim_events = report.events();
    let div = divergence(&trace, &report);

    // Schema identity: both emitters must produce objects with the
    // exact same key set — the property that makes real and simulated
    // streams diffable.
    let key_set = |events: &[taskrt::Event]| -> BTreeSet<String> {
        events
            .iter()
            .flat_map(|e| match e.to_value() {
                Value::Object(fields) => fields.into_iter().map(|(k, _)| k).collect::<Vec<_>>(),
                _ => vec![],
            })
            .collect()
    };
    let real_keys = key_set(&real_events);
    let sim_keys = key_set(&sim_events);
    let schema_identical = !real_keys.is_empty() && real_keys == sim_keys;

    // -- console summary ----------------------------------------------
    println!();
    print!("{}", stats.render_table());
    println!();
    let journal_drop_rate = if journal_emitted + journal_dropped == 0 {
        0.0
    } else {
        journal_dropped as f64 / (journal_emitted + journal_dropped) as f64
    };
    println!(
        "journal: {journal_emitted} events emitted, {} retained, {journal_dropped} dropped ({:.1}% drop rate, ring capacity auto-scaled to worker count)",
        journal_events.len(),
        journal_drop_rate * 100.0
    );
    println!(
        "latency: queue p50 {:.3}ms p95 {:.3}ms | run p50 {:.3}ms p95 {:.3}ms | attempts {}",
        queue_wait.quantile(0.5) as f64 * 1e-6,
        queue_wait.quantile(0.95) as f64 * 1e-6,
        run_time.quantile(0.5) as f64 * 1e-6,
        run_time.quantile(0.95) as f64 * 1e-6,
        attempt.count(),
    );
    println!(
        "pool: {} hits / {} misses ({:.1}% hit rate), {:.1} MiB reused",
        pool_hits - pool_hits0,
        pool_misses - pool_misses0,
        hit_rate(pool_hits - pool_hits0, pool_misses - pool_misses0) * 100.0,
        (pool_bytes - pool_bytes0) as f64 / (1 << 20) as f64,
    );
    println!(
        "stragglers (k={straggler_k}): {} flagged; critical path {} tasks, {:.3}s",
        stragglers.stragglers.len(),
        stragglers.critical_path.len(),
        stragglers.critical_path_s,
    );
    for s in stragglers.stragglers.iter().take(5) {
        println!(
            "  task {} '{}' on worker {}: {:.3}ms = {:.1}x median{}{}",
            s.task,
            s.name,
            s.worker,
            s.duration_s * 1e3,
            s.factor,
            if s.fused { " [fused]" } else { "" },
            if s.retried { " [retried]" } else { "" },
        );
    }
    println!(
        "divergence: real {:.3}s vs sim {:.3}s (ratio {:.2}); schema identical: {schema_identical}",
        div.real_makespan_s, div.sim_makespan_s, div.makespan_ratio,
    );

    // -- artifacts ----------------------------------------------------
    let sample = |events: &[taskrt::Event], n: usize| {
        Value::Array(events.iter().take(n).map(|e| e.to_value()).collect())
    };
    let doc = Value::Object(vec![
        ("workload".into(), Value::from("ecg_pca")),
        ("scale".into(), Value::String(scale)),
        ("workers".into(), Value::from(workers)),
        ("sim_nodes".into(), Value::from(nodes)),
        ("runtime".into(), stats.to_value()),
        ("registry".into(), registry.to_value()),
        (
            "journal".into(),
            Value::Object(vec![
                ("emitted".into(), Value::from(journal_emitted)),
                ("dropped".into(), Value::from(journal_dropped)),
                ("drop_rate".into(), Value::Number(journal_drop_rate)),
                (
                    "events".into(),
                    Value::Array(journal_events.iter().map(|e| e.to_value()).collect()),
                ),
            ]),
        ),
        ("stragglers".into(), stragglers.to_value()),
        ("divergence".into(), div.to_value()),
        (
            "schema".into(),
            Value::Object(vec![
                (
                    "real_keys".into(),
                    Value::Array(real_keys.iter().map(|k| Value::from(k.as_str())).collect()),
                ),
                (
                    "sim_keys".into(),
                    Value::Array(sim_keys.iter().map(|k| Value::from(k.as_str())).collect()),
                ),
                ("identical".into(), Value::from(schema_identical)),
                ("real_sample".into(), sample(&real_events, 4)),
                ("sim_sample".into(), sample(&sim_events, 4)),
            ]),
        ),
    ]);
    write_artifact("out/telemetry.json", &doc.pretty()).expect("write out/telemetry.json");
    write_artifact("out/telemetry.prom", &registry.to_prometheus())
        .expect("write out/telemetry.prom");
    write_artifact(
        "out/telemetry.trace.json",
        &chrome_trace_stragglers(&trace, &stragglers),
    )
    .expect("write out/telemetry.trace.json");

    if check {
        self_check();
        println!("telemetry: self-check ok");
    }
}

fn hit_rate(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

/// One `--watch` snapshot line, read live off the running scheduler.
fn print_watch_line(rt: &Runtime) {
    let Some(t) = rt.telemetry() else { return };
    let run = t.run_time.snapshot();
    let queue = t.queue_wait.snapshot();
    println!(
        "watch: tasks={} queue_p95={:.3}ms run_p95={:.3}ms events={} dropped={}",
        run.count(),
        queue.quantile(0.95) as f64 * 1e-6,
        run.quantile(0.95) as f64 * 1e-6,
        t.journal().emitted(),
        t.journal().dropped(),
    );
}

/// Re-reads the written artifacts and asserts the CI invariants: the
/// Prometheus snapshot validates and carries samples, the JSON parses
/// with a populated journal and non-trivial histograms, the divergence
/// report is present, and real/DES event streams are schema-identical.
fn self_check() {
    let prom = std::fs::read_to_string("out/telemetry.prom").expect("read out/telemetry.prom");
    let samples = validate_prometheus(&prom).expect("out/telemetry.prom is valid exposition text");
    assert!(
        samples > 10,
        "expected >10 Prometheus samples, got {samples}"
    );
    assert!(
        prom.contains("taskrt_pool_hits_total") && prom.contains("taskrt_run_seconds_bucket"),
        "pool counters or run-time histogram missing from Prometheus snapshot"
    );

    let doc = std::fs::read_to_string("out/telemetry.json").expect("read out/telemetry.json");
    let v = Value::parse(&doc).expect("out/telemetry.json parses");
    assert!(
        v["runtime"]["total_tasks"].as_f64().unwrap_or(0.0) > 0.0,
        "scheduler executed no tasks"
    );
    let events = v["journal"]["events"].as_array().expect("journal.events");
    assert!(!events.is_empty(), "journal captured no events");
    // The ring capacity scales with the worker count (see
    // `RuntimeConfig::journal_cap`); a high drop rate means the sizing
    // regressed back to losing most of the run's events.
    let drop_rate = v["journal"]["drop_rate"]
        .as_f64()
        .expect("journal.drop_rate");
    println!("journal drop rate: {:.1}%", drop_rate * 100.0);
    assert!(
        drop_rate < 0.25,
        "journal dropped {:.1}% of events — ring under-sized for this worker count",
        drop_rate * 100.0
    );
    for need in ["task_start", "task_end", "queue_flush"] {
        assert!(
            events
                .iter()
                .any(|e| e.get("kind").and_then(Value::as_str) == Some(need)),
            "journal has no {need} events"
        );
    }
    assert!(
        events.iter().any(|e| matches!(
            e.get("kind").and_then(Value::as_str),
            Some("pool_hit" | "pool_miss")
        )),
        "journal has no buffer-pool events (observer not wired?)"
    );
    let hist = &v["registry"]["taskrt_run_seconds"];
    assert!(
        hist["count"].as_f64().unwrap_or(0.0) > 0.0 && hist["p95"].as_f64().is_some(),
        "run-time histogram empty in registry"
    );
    let div = &v["divergence"];
    assert!(
        div["real_makespan_s"].as_f64().unwrap_or(0.0) > 0.0
            && div["sim_makespan_s"].as_f64().unwrap_or(0.0) > 0.0,
        "divergence report missing or empty"
    );
    assert!(
        !div["kinds"]
            .as_array()
            .expect("divergence.kinds")
            .is_empty(),
        "divergence has no per-kind rows"
    );
    assert_eq!(
        v["schema"]["identical"].as_bool(),
        Some(true),
        "threaded and DES emitters are not schema-identical"
    );

    let s = std::fs::read_to_string("out/telemetry.trace.json").expect("read telemetry.trace.json");
    let t = Value::parse(&s).expect("telemetry.trace.json parses");
    let tev = t["traceEvents"].as_array().expect("traceEvents");
    assert!(
        tev.iter()
            .any(|e| e.get("ph").and_then(Value::as_str) == Some("X")),
        "straggler trace has no timeline slices"
    );
}
