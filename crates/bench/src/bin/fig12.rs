//! Reproduces **Fig. 12**: CNN training time with EDDL-style
//! data-parallelism on the (simulated) CTE-Power GPU cluster, in the
//! paper's three configurations:
//!
//! 1. **no nesting, 4 GPUs per task** — each epoch task uses a whole
//!    node's 4 V100s (4 nodes hold one epoch); folds serialize on the
//!    driver's per-epoch syncs;
//! 2. **no nesting, 1 GPU per task** — paper: 1.2× faster than (1)
//!    because intra-node GPU-GPU communication disappears;
//! 3. **nesting, 1 GPU per task, 5 nodes** — paper: 340 s, 2.24× faster
//!    than (1), below the ideal 5× because of the serial dataset
//!    partitioning/distribution stage.
//!
//! Durations are anchored to the paper's reported relations (see
//! EXPERIMENTS.md): a 1-GPU epoch task ≈ 15 s, GPU-GPU sync ≈ 5 s per
//! extra GPU, and a per-fold partition stage ≈ 46 s on the master.
//!
//! Usage: `cargo run -p bench --bin fig12 --release`

use bench::costs::ScaleModel;
use bench::pipeline::{prepare, run_cnn, run_cnn_flat, PipelineConfig};
use bench::report::{print_series, write_artifact, Args};
use taskrt::sim::{simulate, ClusterSpec, Policy, SimOptions};
use taskrt::Trace;

/// Paper-anchored constants (seconds).
const T_EPOCH_1GPU: f64 = 15.0;
const GPU_COMM_PER_EXTRA: f64 = 5.0;
const T_PARTITION: f64 = 46.0;

/// Median measured duration of a task kind across the trace, nested
/// children included.
fn median_duration(trace: &Trace, kind: &str) -> f64 {
    fn collect(trace: &Trace, kind: &str, out: &mut Vec<f64>) {
        for r in &trace.records {
            if r.name == kind {
                out.push(r.duration_s);
            }
            if let Some(c) = &r.child {
                collect(c, kind, out);
            }
        }
    }
    let mut ds = Vec::new();
    collect(trace, kind, &mut ds);
    assert!(!ds.is_empty(), "no '{kind}' tasks recorded");
    ds.sort_by(f64::total_cmp);
    ds[ds.len() / 2]
}

/// Builds the duration model that anchors `cnn_train` to the paper's
/// per-epoch cost and `cnn_partition` to the serial distribution stage.
fn anchored_model(trace: &Trace) -> ScaleModel {
    let mut model = ScaleModel::identity().with_gpu_comm(GPU_COMM_PER_EXTRA);
    let measured_train = median_duration(trace, "cnn_train");
    let measured_part = median_duration(trace, "cnn_partition");
    model
        .factors
        .insert("cnn_train".into(), T_EPOCH_1GPU / measured_train);
    model
        .factors
        .insert("cnn_partition".into(), T_PARTITION / measured_part);
    // Merges and evals are cheap weight averaging / inference.
    model.factors.insert(
        "cnn_merge".into(),
        0.5 / median_duration(trace, "cnn_merge"),
    );
    model
}

fn report(trace: &Trace, nodes: usize, model: &ScaleModel) -> taskrt::sim::SimReport {
    let cluster = ClusterSpec::cte_power(nodes);
    let opts = SimOptions {
        policy: Policy::LocalityAware,
        model_transfers: true,
        duration_of: Some(model.duration_fn()),
        ..SimOptions::default()
    };
    simulate(trace, &cluster, &opts)
}

fn makespan(trace: &Trace, nodes: usize, model: &ScaleModel) -> f64 {
    report(trace, nodes, model).makespan_s
}

fn main() {
    let args = Args::capture();
    let cfg = PipelineConfig {
        seed: Args::capture().get_or("seed", 2017),
        ..Default::default()
    };
    let _ = args;

    eprintln!("preparing dataset + PCA...");
    let prep = prepare(&cfg);

    eprintln!("recording no-nesting workflow (4 GPUs/task)...");
    let flat4 = run_cnn_flat(&prep, &cfg, 4);
    eprintln!("recording no-nesting workflow (1 GPU/task)...");
    let flat1 = run_cnn_flat(&prep, &cfg, 1);
    eprintln!("recording nested workflow (1 GPU/task)...");
    let nested = run_cnn(&prep, &cfg, 1);

    let model = anchored_model(&flat1.trace);

    let t_4gpu = makespan(&flat4.trace, 4, &model);
    let t_1gpu = makespan(&flat1.trace, 1, &model);
    let t_nested = makespan(&nested.trace, 5, &model);

    let series = vec![
        ("no nesting, 4 GPU/task (4 nodes)".to_string(), t_4gpu),
        ("no nesting, 1 GPU/task (1 node)".to_string(), t_1gpu),
        ("nesting, 1 GPU/task (5 nodes)".to_string(), t_nested),
    ];
    print_series(
        "Fig. 12 — CNN training time on CTE-Power (simulated)",
        "configuration",
        "seconds",
        &series,
    );
    println!(
        "\n  1-GPU vs 4-GPU speedup: {:.2}x (paper: 1.2x)",
        t_4gpu / t_1gpu
    );
    println!(
        "  nesting speedup vs baseline: {:.2}x (paper: 2.24x, 340 s)",
        t_4gpu / t_nested
    );
    println!(
        "  nesting speedup vs ideal 5 folds: {:.2}x of 5x — limited by the serial partition stage",
        t_4gpu / t_nested
    );
    println!(
        "  CNN accuracy (nested run, pooled folds): {:.1}%",
        nested.accuracy() * 100.0
    );

    println!("\nnested schedule on 5 CTE-Power nodes (one fold per node):");
    let rep = report(&nested.trace, 5, &model);
    print!("{}", taskrt::gantt::ascii_gantt(&rep, 5, 72));

    let json = format!(
        "{{\"t_4gpu\":{t_4gpu:.2},\"t_1gpu\":{t_1gpu:.2},\"t_nested\":{t_nested:.2},\"speedup_1gpu\":{:.3},\"speedup_nested\":{:.3}}}",
        t_4gpu / t_1gpu,
        t_4gpu / t_nested
    );
    write_artifact("out/fig12.json", &json).expect("artifact");
}
