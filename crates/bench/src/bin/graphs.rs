//! Regenerates the paper's execution-graph figures as Graphviz DOT
//! files (Figs. 4, 6, 8, 9, 10).
//!
//! Like the paper, reduced workloads are used so the graphs stay
//! readable ("these graphs represent only a part of the actual tests").
//!
//! Usage: `cargo run -p bench --bin graphs --release`
//! Render with e.g. `dot -Tsvg out/graph_csvm.dot -o graph_csvm.svg`.

use bench::report::write_artifact;
use dislib::csvm::{CascadeSvm, CascadeSvmParams};
use dislib::knn::{KnnClassifier, KnnParams};
use dislib::rf::{RandomForest, RfParams};
use dsarray::{DsArray, DsLabels};
use ecg::{Dataset, DatasetSpec, Scale};
use linalg::Matrix;
use nnet::{train_kfold, train_kfold_nested, FoldData, Network, ParallelConfig, TrainParams};
use taskrt::{dot::to_dot, Runtime};

fn small_data() -> (Matrix, Vec<u8>) {
    let mut spec = DatasetSpec::at_scale(Scale::Small).with_seed(7);
    spec.n_normal = 24;
    spec.n_af = 4;
    spec.ecg.max_duration_s = 11.0;
    let ds = Dataset::build(&spec);
    // Compress features so the demo runs instantly.
    (ds.x.slice_cols(0, 64), ds.y)
}

fn main() {
    let (x, y) = small_data();
    let rb = x.rows().div_ceil(4);

    // Fig. 4 — CSVM cascade.
    {
        let rt = Runtime::new();
        let ds = DsArray::from_matrix(&rt, &x, rb, x.cols());
        let dl = DsLabels::from_slice(&rt, &y, rb);
        let _ = CascadeSvm::fit(&rt, &ds, &dl, CascadeSvmParams::default());
        write_artifact(
            "out/graph_csvm.dot",
            &to_dot(&rt.finish(), "Fig. 4 — CSVM", 400),
        )
        .unwrap();
    }

    // Fig. 6 — KNN (fit + predict, K=5).
    {
        let rt = Runtime::new();
        let ds = DsArray::from_matrix(&rt, &x, rb, x.cols());
        let dl = DsLabels::from_slice(&rt, &y, rb);
        let model = KnnClassifier::fit(&rt, &ds, &dl, KnnParams::default());
        let _ = model.predict(&rt, &ds);
        write_artifact(
            "out/graph_knn.dot",
            &to_dot(&rt.finish(), "Fig. 6 — KNN", 400),
        )
        .unwrap();
    }

    // Fig. 8 — RF with 40 estimators.
    {
        let rt = Runtime::new();
        let xh = rt.put(x.clone());
        let yh = rt.put(y.clone());
        let _ = RandomForest::fit(
            &rt,
            xh,
            yh,
            RfParams {
                n_estimators: 40,
                ..Default::default()
            },
        );
        write_artifact(
            "out/graph_rf.dot",
            &to_dot(&rt.finish(), "Fig. 8 — RF", 400),
        )
        .unwrap();
    }

    // Figs. 9 / 10 — CNN without and with nesting.
    let folds: Vec<FoldData> = (0..5)
        .map(|i| {
            let lo = i * x.rows() / 5;
            let hi = ((i + 1) * x.rows() / 5).min(x.rows());
            FoldData {
                x_train: x.slice_rows(0, x.rows().min(16)),
                y_train: y[..x.rows().min(16)].to_vec(),
                x_test: x.slice_rows(lo, hi),
                y_test: y[lo..hi].to_vec(),
            }
        })
        .collect();
    let cfg = ParallelConfig {
        epochs: 7,
        workers: 4,
        gpus_per_task: 1,
        train: TrainParams {
            lr: 0.02,
            momentum: 0.9,
            batch_size: 8,
            seed: 0,
        },
    };
    let net0 = Network::afib_cnn(64, 0);
    {
        let rt = Runtime::new();
        let _ = train_kfold(&rt, folds.clone(), &net0, &cfg);
        write_artifact(
            "out/graph_cnn.dot",
            &to_dot(&rt.finish(), "Fig. 9 — CNN (no nesting)", 800),
        )
        .unwrap();
    }
    {
        let rt = Runtime::new();
        let handles = train_kfold_nested(&rt, folds, &net0, &cfg);
        for h in &handles {
            let _ = rt.wait(*h);
        }
        write_artifact(
            "out/graph_cnn_nested.dot",
            &to_dot(&rt.finish(), "Fig. 10 — CNN (nesting)", 800),
        )
        .unwrap();
    }

    println!("done; render with `dot -Tsvg out/graph_*.dot`");
}
