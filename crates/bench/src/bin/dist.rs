//! Distributed-executor harness: run PCA across real worker processes
//! and gate the result against the inline oracle and the DES.
//!
//! The workload is the §III-B4 PCA pipeline expressed as a
//! `taskrt::dist` plan (`dislib::pca_dist`). The harness:
//!
//! 1. runs the plan **inline** (serial, in-process) as the oracle;
//! 2. launches `--workers N` worker *processes* (this binary re-executes
//!    itself; `dist::maybe_worker` routes children into the worker
//!    loop), runs the same plan distributed, and requires the outputs to
//!    be **bit-identical** to the oracle;
//! 3. replays the measured trace on the DES mirror of the cluster
//!    (`DistRuntime::cluster_spec`) and computes the measured-vs-
//!    simulated divergence — `--check` gates `|makespan_ratio − 1| ≤
//!    0.25`;
//! 4. with `--chaos`, SIGKILLs one worker mid-run and requires the
//!    driver to finish anyway via lineage re-execution, still
//!    bit-identical;
//! 5. asserts clean teardown: every worker reaped, socket directory
//!    removed (no leaked processes or sockets).
//!
//! Writes `out/dist.json` and `out/dist_divergence.json` (separate
//! artifact so CI uploads the divergence report on its own).
//!
//! Usage: `cargo run --release -p bench --bin dist --
//! [--scale small|full] [--workers N] [--chaos] [--check]`

use bench::report::{write_artifact, Args};
use dislib::pca_dist::{pca_plan, register_pca_kinds};
use linalg::Matrix;
use std::sync::Arc;
use taskrt::dist::{self, fingerprint, DistConfig, DistRuntime, KindRegistry};
use taskrt::json::Value;
use taskrt::sim::{simulate, SimOptions};
use taskrt::telemetry::divergence;

/// Per-task master-side dispatch cost fed to the DES. The driver
/// serializes one Done → schedule → Run RPC round trip per task
/// (length-prefixed frames over Unix sockets, ~0.1–1 MB payload
/// specs); this is the measured order of that cost on commodity
/// hardware (~0.9 ms per Done→Run turnaround), and the same centralized-runtime constant the simulator's
/// `dispatch_overhead_s` knob exists to model (arXiv 2010.11105). A
/// fixed constant — not fitted per run — so the divergence gate stays
/// an honest prediction check.
const DISPATCH_OVERHEAD_S: f64 = 800e-6;

/// Deterministic input matrix (same fixed pattern as the chaos harness).
fn input_matrix(rows: usize, cols: usize) -> Matrix {
    let data: Vec<f64> = (0..rows * cols)
        .map(|i| {
            let r = i / cols;
            let c = i % cols;
            ((r * 31 + c * 17) % 101) as f64 / 7.0 - 5.0
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn main() {
    // Worker children enter here and never return; everything below is
    // driver-only. The registry must be built *before* this call so
    // workers and driver share the exact same kind table.
    let registry = {
        let mut reg = KindRegistry::new();
        register_pca_kinds(&mut reg);
        Arc::new(reg)
    };
    dist::maybe_worker(&registry);

    let args = Args::capture();
    let check = args.has("check");
    let chaos = args.has("chaos");
    let workers: usize = args.get_or("workers", 2);
    let scale: String = args.get_or("scale", "small".to_string());
    let (n, d, block_rows, k) = match scale.as_str() {
        "small" => (2048, 256, 256, 8),
        "full" => (4096, 320, 256, 16),
        other => panic!("unknown --scale '{other}' (small|full)"),
    };
    assert!(
        !chaos || workers >= 2,
        "--chaos kills one worker; need --workers >= 2 to have survivors"
    );

    println!("== dist: PCA {n}x{d} (blocks of {block_rows} rows, k={k}) on {workers} worker processes ==");

    let x = input_matrix(n, d);
    let (plan, outs) = pca_plan(&x, block_rows, k);
    println!(
        "plan: {} tasks, {} outputs",
        plan.len(),
        plan.outputs().len()
    );

    // 1. Inline oracle.
    let t0 = std::time::Instant::now();
    let inline = plan.run_inline(&registry).expect("inline run failed");
    let inline_s = t0.elapsed().as_secs_f64();
    let inline_fp = fingerprint(&inline);
    println!("inline oracle: {inline_s:.3}s");

    // 2. Distributed run across worker processes.
    let mut rt = DistRuntime::launch(DistConfig::with_workers(workers), &registry)
        .expect("failed to launch worker processes");
    if chaos {
        // SIGKILL worker 0 a third of the way through: by then it holds
        // data that later tasks need, so lineage must re-execute.
        rt.kill_worker_after(plan.len() / 3, 0);
        println!(
            "chaos: SIGKILL worker 0 after {} completions",
            plan.len() / 3
        );
    }
    let report = rt.run(&plan, &registry).expect("distributed run failed");
    let spec = rt.cluster_spec();
    let shutdown = rt.shutdown();
    let s = &report.stats;
    println!(
        "distributed: {:.3}s wall, {} task runs, {} retries, {} re-executions, {} workers lost",
        s.wall_s, s.tasks_run, s.retries, s.reexecutions, s.workers_lost
    );
    println!(
        "data plane: {} peer pulls ({} bytes), {} relay bytes",
        s.peer_pulls, s.peer_pull_bytes, s.relay_bytes
    );
    println!(
        "teardown: {}/{} reaped ({} force-killed), sock dir removed: {}",
        shutdown.workers_reaped,
        shutdown.workers_spawned,
        shutdown.workers_force_killed,
        shutdown.sock_dir_removed
    );

    // Bit-identity against the oracle.
    let dist_fp = fingerprint(&report.outputs);
    let identical = dist_fp == inline_fp;
    println!("bit-identical to inline oracle: {identical}");
    let proj = report.outputs[&outs.projection].as_matrix();
    assert_eq!(proj.shape(), (n, k), "projection shape");

    // 3. DES replay of the measured trace on the cluster's mirror spec.
    let sim = simulate(
        &report.trace,
        &spec,
        &SimOptions {
            dispatch_overhead_s: DISPATCH_OVERHEAD_S,
            ..SimOptions::default()
        },
    );
    let div = divergence(&report.trace, &sim);
    println!(
        "DES: measured {:.3}s vs simulated {:.3}s (ratio {:.3})",
        div.real_makespan_s, div.sim_makespan_s, div.makespan_ratio
    );

    let summary = Value::Object(vec![
        ("scale".into(), Value::String(scale.clone())),
        ("workers".into(), Value::Number(workers as f64)),
        ("chaos".into(), Value::Bool(chaos)),
        ("tasks".into(), Value::Number(plan.len() as f64)),
        ("inline_s".into(), Value::Number(inline_s)),
        ("wall_s".into(), Value::Number(s.wall_s)),
        ("bit_identical".into(), Value::Bool(identical)),
        ("tasks_run".into(), Value::Number(s.tasks_run as f64)),
        ("retries".into(), Value::Number(s.retries as f64)),
        ("reexecutions".into(), Value::Number(s.reexecutions as f64)),
        ("lost_tasks".into(), Value::Number(s.lost_tasks as f64)),
        ("workers_lost".into(), Value::Number(s.workers_lost as f64)),
        ("peer_pulls".into(), Value::Number(s.peer_pulls as f64)),
        (
            "peer_pull_bytes".into(),
            Value::Number(s.peer_pull_bytes as f64),
        ),
        ("relay_bytes".into(), Value::Number(s.relay_bytes as f64)),
        (
            "workers_reaped".into(),
            Value::Number(shutdown.workers_reaped as f64),
        ),
        (
            "workers_force_killed".into(),
            Value::Number(shutdown.workers_force_killed as f64),
        ),
        (
            "sock_dir_removed".into(),
            Value::Bool(shutdown.sock_dir_removed),
        ),
        ("makespan_ratio".into(), Value::Number(div.makespan_ratio)),
    ]);
    write_artifact("out/dist.json", &summary.pretty()).expect("write out/dist.json");
    write_artifact("out/dist_divergence.json", &div.to_value().pretty())
        .expect("write out/dist_divergence.json");

    if check {
        assert!(
            identical,
            "distributed outputs diverged from the inline oracle"
        );
        assert_eq!(
            shutdown.workers_reaped, workers,
            "not every worker was reaped"
        );
        assert!(shutdown.sock_dir_removed, "socket directory leaked");
        if !chaos {
            // The DES replays a healthy cluster, so the prediction gate
            // applies to clean runs; chaos runs include a worker death
            // the replay does not model and are gated on recovery.
            assert!(
                (div.makespan_ratio - 1.0).abs() <= 0.25,
                "measured-vs-DES makespan diverged: ratio {:.3} (gate: |ratio-1| <= 0.25)",
                div.makespan_ratio
            );
        }
        if chaos {
            assert_eq!(s.workers_lost, 1, "exactly one worker should die");
            assert!(
                s.reexecutions + s.lost_tasks > 0,
                "the killed worker's tasks must be re-executed or requeued"
            );
        } else {
            assert_eq!(s.workers_lost, 0, "no worker should die in a clean run");
            assert_eq!(s.tasks_run, plan.len() as u64);
        }
        println!("CHECK PASSED");
    }
}
