//! Reproduces the paper's §IV-B observation that the PCA preprocessing
//! cost is **constant across algorithms** ("we did not consider the time
//! of executing the PCA, that is the same for each algorithm and takes
//! about 850 seconds") and breaks that cost down by task kind.
//!
//! Usage: `cargo run -p bench --bin pca_cost --release`

use bench::costs::ScaleModel;
use bench::pipeline::{prepare, PipelineConfig};
use bench::report::{print_series, write_artifact, Args};
use taskrt::sim::{simulate, ClusterSpec, Policy, SimOptions};

const SAMPLE_RATIO: f64 = 500.0 / 60.0;
/// PCA runs on the raw STFT features (paper: 18 810; ours: ~1 078).
const FEATURE_RATIO: f64 = 18810.0 / 1078.0;
/// The paper reports the whole PCA stage at ~850 s, dominated by the
/// single `numpy.linalg.eigh` task (LAPACK on a 48-core node); we anchor
/// that task directly instead of extrapolating our single-threaded
/// solver's constant.
const T_EIGH: f64 = 800.0;

fn main() {
    let args = Args::capture();
    let cfg = PipelineConfig {
        seed: args.get_or("seed", 2017),
        ..Default::default()
    };

    eprintln!("running preprocessing + distributed PCA...");
    let prep = prepare(&cfg);
    let trace = &prep.pca_trace;

    let model = ScaleModel::paper_scale(SAMPLE_RATIO, FEATURE_RATIO).with_fixed("pca_eigh", T_EIGH);
    let opts = SimOptions {
        policy: Policy::LocalityAware,
        model_transfers: true,
        duration_of: Some(model.duration_fn()),
        ..SimOptions::default()
    };

    // The paper runs PCA once on the full cluster; show it is flat in
    // node count beyond the point where the single eigh task dominates.
    let mut series = Vec::new();
    for nodes in 1..=6 {
        let cluster = ClusterSpec::marenostrum4(nodes);
        let rep = simulate(trace, &cluster, &opts);
        series.push((format!("{}", cluster.total_cores()), rep.makespan_s));
    }
    print_series(
        "PCA cost vs cores (simulated, paper scale)",
        "cores",
        "seconds",
        &series,
    );

    let rep = simulate(trace, &ClusterSpec::marenostrum4(4), &opts);
    println!("\nbusy seconds by task kind (4 nodes):");
    let mut kinds: Vec<_> = rep.busy_by_kind.iter().collect();
    kinds.sort_by(|a, b| b.1.partial_cmp(a.1).unwrap());
    for (kind, secs) in kinds.iter().take(10) {
        println!("  {kind:>18}  {secs:>10.2}");
    }
    println!(
        "\nsingle-task eigendecomposition dominates: {:.1}s of {:.1}s makespan ({:.0}%)",
        rep.busy_by_kind["pca_eigh"],
        rep.makespan_s,
        rep.busy_by_kind["pca_eigh"] / rep.makespan_s * 100.0
    );
    println!("paper: ~850 s, constant across algorithms");

    let flat = series
        .iter()
        .map(|(c, s)| format!("{{\"cores\":{c},\"seconds\":{s:.2}}}"))
        .collect::<Vec<_>>();
    write_artifact("out/pca_cost.json", &format!("[{}]", flat.join(","))).expect("artifact");
}
