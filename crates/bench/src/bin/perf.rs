//! Hot-path throughput benchmark: scheduler, DES replay, blocked GEMM.
//!
//! Measures the three paths the performance overhaul targets and writes
//! the numbers to `BENCH_perf.json` in the current directory:
//!
//! * **scheduler** — a DAG of no-op tasks with random dependencies
//!   driven through the new runtime (threaded and inline) and through
//!   [`bench::legacy::LegacyRuntime`], the seed's global-lock
//!   hash-map scheduler kept as a baseline. Reported as tasks/second;
//!   `speedup_threaded` is new-vs-legacy on the same DAG and worker
//!   count.
//! * **des** — replaying a recorded no-op trace through
//!   [`taskrt::sim::simulate`] on a simulated MareNostrum 4 partition,
//!   reported as task events/second.
//! * **gemm** — dense [`linalg::Matrix::matmul`] at a fixed size,
//!   reported as GFLOP/s.
//!
//! Usage: `cargo run --release -p bench --bin perf -- [--scale small|full]`
//! (`small` is the CI smoke setting: fewer repetitions, smaller GEMM).

use bench::legacy::{AnyArc as LegacyAnyArc, LegacyRuntime, LegacyTaskFn};
use bench::report::{write_artifact, Args};
use linalg::Matrix;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::Arc;
use std::time::Instant;
use taskrt::json::Value;
use taskrt::runtime::AnyArc;
use taskrt::sim::{simulate, ClusterSpec, SimOptions};
use taskrt::{DataId, ExecMode, Runtime, RuntimeConfig};

/// Random-dependency DAG: task `i` depends on up to 3 of the previous
/// 64 tasks. Generated once and replayed on every runtime under test.
fn make_dag(n: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            if i == 0 {
                return Vec::new();
            }
            let ndeps = (rng.next_u64() % 9) as usize;
            let window = i.min(64);
            let mut deps: Vec<usize> = (0..ndeps)
                .map(|_| i - 1 - (rng.next_u64() as usize % window))
                .collect();
            deps.sort_unstable();
            deps.dedup();
            deps
        })
        .collect()
}

/// One shared output value for every no-op task (cloning an `Arc` is a
/// refcount bump): keeps the measured work scheduler-only, identically
/// for both runtimes under test.
fn unit() -> Arc<u8> {
    static UNIT: std::sync::OnceLock<Arc<u8>> = std::sync::OnceLock::new();
    UNIT.get_or_init(|| Arc::new(0u8)).clone()
}

type NoopFn = Box<dyn FnOnce(&taskrt::TaskCtx, &[AnyArc]) -> Vec<(AnyArc, usize)> + Send>;

fn noop_body() -> NoopFn {
    Box::new(|_ctx, _ins| vec![(unit() as AnyArc, 1)])
}

/// Drives `dag` through the new runtime; returns elapsed seconds.
fn drive_new(rt: &Runtime, dag: &[Vec<usize>]) -> f64 {
    let start = Instant::now();
    let mut outs: Vec<DataId> = Vec::with_capacity(dag.len());
    for deps in dag {
        let inputs: Vec<DataId> = deps.iter().map(|&j| outs[j]).collect();
        let ids = rt.submit_raw("noop".to_string(), 0, 0, inputs, 1, noop_body());
        outs.push(ids[0]);
    }
    rt.barrier();
    start.elapsed().as_secs_f64()
}

fn legacy_noop_body() -> LegacyTaskFn {
    Box::new(|_ins| vec![(unit() as LegacyAnyArc, 1)])
}

/// Drives `dag` through the legacy baseline; returns elapsed seconds.
fn drive_legacy(rt: &LegacyRuntime, dag: &[Vec<usize>]) -> f64 {
    let start = Instant::now();
    let mut outs: Vec<DataId> = Vec::with_capacity(dag.len());
    for deps in dag {
        let inputs: Vec<DataId> = deps.iter().map(|&j| outs[j]).collect();
        let ids = rt.submit_raw("noop".to_string(), inputs, 1, legacy_noop_body());
        outs.push(ids[0]);
    }
    rt.barrier();
    start.elapsed().as_secs_f64()
}

/// Best (minimum) elapsed time over `reps` runs of `f`.
fn best_of(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn main() {
    let args = Args::capture();
    let scale = args.get("scale").unwrap_or("full").to_string();
    let small = scale == "small";
    // The CI container has 1 CPU: threaded timings swing 20-30% run to
    // run, so full scale takes enough repetitions for best-of to settle.
    let reps = if small { 2 } else { 9 };
    let n_tasks = 10_000; // the acceptance workload: 10k no-op tasks
    let default_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(4, 8);
    let workers: usize = args.get_or("workers", default_workers);

    println!("perf: scale={scale} tasks={n_tasks} workers={workers} reps={reps}");
    let dag = make_dag(n_tasks, 42);

    // -- scheduler ----------------------------------------------------
    let t_new = best_of(reps, || drive_new(&Runtime::threaded(workers), &dag));
    let t_inline = best_of(reps, || drive_new(&Runtime::new(), &dag));
    let t_legacy = best_of(reps, || drive_legacy(&LegacyRuntime::new(workers), &dag));
    let t_legacy_inline = best_of(reps, || drive_legacy(&LegacyRuntime::new(0), &dag));
    let new_tps = n_tasks as f64 / t_new;
    let inline_tps = n_tasks as f64 / t_inline;
    let legacy_tps = n_tasks as f64 / t_legacy;
    let legacy_inline_tps = n_tasks as f64 / t_legacy_inline;
    let speedup = new_tps / legacy_tps;
    let speedup_inline = inline_tps / legacy_inline_tps;
    println!(
        "scheduler (threaded x{workers}): new {new_tps:.0} tasks/s | legacy {legacy_tps:.0} tasks/s | speedup {speedup:.2}x"
    );
    println!(
        "scheduler (inline):      new {inline_tps:.0} tasks/s | legacy {legacy_inline_tps:.0} tasks/s | speedup {speedup_inline:.2}x"
    );

    // -- observability overhead ---------------------------------------
    // `Runtime::threaded` keeps the obs counters on (the default);
    // re-run with `metrics: false` to bound the instrumentation cost.
    // The two configurations are measured interleaved (on, off, on,
    // off, ...) with extra repetitions: threaded timings on a loaded
    // 1-CPU container drift over time, and interleaving keeps that
    // drift from landing on one side of the comparison. The acceptance
    // criterion is enabled-within-10%-of-disabled.
    let no_metrics = || {
        Runtime::with_config(RuntimeConfig {
            mode: ExecMode::Threads(workers),
            nested_mode: ExecMode::Inline,
            metrics: false,
        })
    };
    let obs_reps = reps.max(11);
    let mut t_obs_on = f64::INFINITY;
    let mut t_obs_off = f64::INFINITY;
    for _ in 0..obs_reps {
        t_obs_on = t_obs_on.min(drive_new(&Runtime::threaded(workers), &dag));
        t_obs_off = t_obs_off.min(drive_new(&no_metrics(), &dag));
    }
    let obs_on_tps = n_tasks as f64 / t_obs_on;
    let obs_off_tps = n_tasks as f64 / t_obs_off;
    let obs_overhead = obs_off_tps / obs_on_tps - 1.0;
    println!(
        "scheduler obs: counters on {obs_on_tps:.0} tasks/s | off {obs_off_tps:.0} tasks/s | overhead {:.1}%",
        obs_overhead * 100.0
    );

    // -- DES replay ---------------------------------------------------
    let sim_rt = Runtime::new();
    let mut outs: Vec<DataId> = Vec::with_capacity(dag.len());
    for deps in &dag {
        let inputs: Vec<DataId> = deps.iter().map(|&j| outs[j]).collect();
        let ids = sim_rt.submit_raw("noop".to_string(), 1, 0, inputs, 1, noop_body());
        outs.push(ids[0]);
    }
    let trace = sim_rt.finish();
    let cluster = ClusterSpec::marenostrum4(16);
    let opts = SimOptions::default();
    let mut makespan = 0.0;
    let t_sim = best_of(reps, || {
        let start = Instant::now();
        let report = simulate(&trace, &cluster, &opts);
        makespan = report.makespan_s;
        start.elapsed().as_secs_f64()
    });
    let events_per_s = trace.records.len() as f64 / t_sim;
    println!(
        "des: {} task events in {:.3}s -> {:.0} events/s (makespan {:.3}s)",
        trace.records.len(),
        t_sim,
        events_per_s,
        makespan
    );

    // -- GEMM ---------------------------------------------------------
    let n = if small { 256 } else { 512 };
    let a = Matrix::from_fn(n, n, |r, c| ((r * n + c) as f64 * 0.001).sin());
    let b = Matrix::from_fn(n, n, |r, c| ((r + c) as f64 * 0.002).cos());
    let mut sink = 0.0;
    let t_gemm = best_of(reps, || {
        let start = Instant::now();
        let c = a.matmul(&b);
        sink += c.get(0, 0);
        start.elapsed().as_secs_f64()
    });
    let gflops = 2.0 * (n as f64).powi(3) / t_gemm / 1e9;
    println!("gemm: {n}x{n}x{n} in {t_gemm:.4}s -> {gflops:.2} GFLOP/s (checksum {sink:.3})");

    // -- artifact -----------------------------------------------------
    let doc = Value::Object(vec![
        ("scale".into(), Value::String(scale)),
        (
            "scheduler".into(),
            Value::Object(vec![
                ("tasks".into(), Value::Number(n_tasks as f64)),
                ("workers".into(), Value::Number(workers as f64)),
                ("new_threaded_tasks_per_s".into(), Value::Number(new_tps)),
                ("new_inline_tasks_per_s".into(), Value::Number(inline_tps)),
                (
                    "legacy_threaded_tasks_per_s".into(),
                    Value::Number(legacy_tps),
                ),
                (
                    "legacy_inline_tasks_per_s".into(),
                    Value::Number(legacy_inline_tps),
                ),
                ("speedup_threaded".into(), Value::Number(speedup)),
                ("speedup_inline".into(), Value::Number(speedup_inline)),
                ("obs_on_tasks_per_s".into(), Value::Number(obs_on_tps)),
                ("obs_off_tasks_per_s".into(), Value::Number(obs_off_tps)),
                ("obs_overhead_frac".into(), Value::Number(obs_overhead)),
            ]),
        ),
        (
            "des".into(),
            Value::Object(vec![
                ("tasks".into(), Value::Number(trace.records.len() as f64)),
                ("events_per_s".into(), Value::Number(events_per_s)),
                ("makespan_s".into(), Value::Number(makespan)),
            ]),
        ),
        (
            "gemm".into(),
            Value::Object(vec![
                ("n".into(), Value::Number(n as f64)),
                ("gflops".into(), Value::Number(gflops)),
            ]),
        ),
    ]);
    write_artifact("BENCH_perf.json", &doc.pretty()).expect("write BENCH_perf.json");
}
