//! Hot-path throughput benchmark: scheduler, DES replay, GEMM, and the
//! application kernels (conv, STFT, RF split finding).
//!
//! Measures the paths the performance overhauls target and writes the
//! numbers to `out/perf.json` (one artifact per binary under `out/`,
//! so parallel CI jobs never clobber each other):
//!
//! * **scheduler** — a DAG of no-op tasks with random dependencies
//!   driven through the new runtime (threaded and inline) and through
//!   [`bench::legacy::LegacyRuntime`], the seed's global-lock
//!   hash-map scheduler kept as a baseline. Reported as tasks/second;
//!   `speedup_threaded` is new-vs-legacy on the same DAG and worker
//!   count.
//! * **des** — replaying a recorded no-op trace through
//!   [`taskrt::sim::simulate`] on a simulated MareNostrum 4 partition,
//!   reported as task events/second.
//! * **gemm** — dense [`linalg::Matrix::matmul`] at a fixed size,
//!   reported as GFLOP/s.
//! * **kernel_floor** — the f32 [`linalg::sgemm_nn`] packed/FMA path
//!   against its scalar oracle across a size sweep, reported as
//!   GFLOP/s per size; the n=512 ratio is gated per dispatch backend
//!   and parity is asserted at 1e-4 relative.
//! * **locality** — the blocked elementwise chain, threaded, with
//!   [`taskrt::RuntimeConfig::locality`] on vs off (bit-identity
//!   asserted); reports the locality hit rate and throughput ratio.
//! * **conv** — [`nnet::Conv1d`] forward/backward via im2col + GEMM
//!   against the seed's scalar loops (`forward_naive` /
//!   `backward_naive`), reported as samples/second per direction.
//! * **stft** — [`linalg::stft`] spectrogram sweeps through a reused
//!   [`linalg::SpectrogramPlan`] (plan-cached real FFT) against the
//!   seed's per-window complex-FFT `spectrogram_legacy`, reported as
//!   signals/second.
//! * **rf_split** — [`dislib::rf::build_tree`] (pre-sorted split
//!   finding) against [`dislib::rf::build_tree_legacy`] (per-node
//!   re-sorting) on the same synthetic dataset, reported as
//!   trees/second; the trees are asserted identical.
//! * **fusion** — the graph-rewrite optimizer
//!   ([`taskrt::RuntimeConfig::fuse`]): the PR-4 elementwise chain at
//!   fine-grained blocks fused vs unfused (Melem/s, asserted
//!   bit-identical), the PCA pipeline's submitted-vs-dispatched task
//!   counts, and a DES replay of both schedules on 288 simulated cores
//!   with a per-task dispatch cost. Also writes the fused run's Chrome
//!   trace to `out/fused_pca.trace.json`.
//!
//! Usage: `cargo run --release -p bench --bin perf -- [--scale small|full]
//! [--check] [--fuse]` (`small` is the CI smoke setting: fewer
//! repetitions, smaller shapes; `--check` exits non-zero if any
//! `speedup_*` field falls below 1.0, fusion changes a value, or the
//! fused PCA schedule shrinks by less than 30%; `--fuse` additionally
//! drives the scheduler/obs sections through fusing runtimes).

use bench::legacy::{AnyArc as LegacyAnyArc, LegacyRuntime, LegacyTaskFn};
use bench::report::{write_artifact, Args};
use dislib::pca::{Components, Pca};
use dislib::rf::{build_tree, build_tree_legacy, RfParams};
use dsarray::DsArray;
use linalg::stft::{spectrogram_legacy, SpectrogramConfig, SpectrogramPlan};
use linalg::Matrix;
use nnet::Conv1d;
use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use std::sync::Arc;
use std::time::Instant;
use taskrt::json::Value;
use taskrt::obs::chrome_trace;
use taskrt::runtime::AnyArc;
use taskrt::sim::{simulate, ClusterSpec, SimOptions};
use taskrt::{fuse_trace, DataId, ExecMode, Runtime, RuntimeConfig};

/// Random-dependency DAG: task `i` depends on up to 3 of the previous
/// 64 tasks. Generated once and replayed on every runtime under test.
fn make_dag(n: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            if i == 0 {
                return Vec::new();
            }
            let ndeps = (rng.next_u64() % 9) as usize;
            let window = i.min(64);
            let mut deps: Vec<usize> = (0..ndeps)
                .map(|_| i - 1 - (rng.next_u64() as usize % window))
                .collect();
            deps.sort_unstable();
            deps.dedup();
            deps
        })
        .collect()
}

/// One shared output value for every no-op task (cloning an `Arc` is a
/// refcount bump): keeps the measured work scheduler-only, identically
/// for both runtimes under test.
fn unit() -> Arc<u8> {
    static UNIT: std::sync::OnceLock<Arc<u8>> = std::sync::OnceLock::new();
    UNIT.get_or_init(|| Arc::new(0u8)).clone()
}

type NoopFn = Box<dyn FnMut(&taskrt::TaskCtx, &mut Vec<AnyArc>) -> Vec<(AnyArc, usize)> + Send>;

fn noop_body() -> NoopFn {
    Box::new(|_ctx, _ins| vec![(unit() as AnyArc, 1)])
}

/// Drives `dag` through the new runtime; returns elapsed seconds.
fn drive_new(rt: &Runtime, dag: &[Vec<usize>]) -> f64 {
    let start = Instant::now();
    let mut outs: Vec<DataId> = Vec::with_capacity(dag.len());
    for deps in dag {
        let inputs: Vec<DataId> = deps.iter().map(|&j| outs[j]).collect();
        let ids = rt.submit_raw("noop".to_string(), 0, 0, inputs, 1, noop_body());
        outs.push(ids[0]);
    }
    rt.barrier();
    start.elapsed().as_secs_f64()
}

fn legacy_noop_body() -> LegacyTaskFn {
    Box::new(|_ins| vec![(unit() as LegacyAnyArc, 1)])
}

/// Drives `dag` through the legacy baseline; returns elapsed seconds.
fn drive_legacy(rt: &LegacyRuntime, dag: &[Vec<usize>]) -> f64 {
    let start = Instant::now();
    let mut outs: Vec<DataId> = Vec::with_capacity(dag.len());
    for deps in dag {
        let inputs: Vec<DataId> = deps.iter().map(|&j| outs[j]).collect();
        let ids = rt.submit_raw("noop".to_string(), inputs, 1, legacy_noop_body());
        outs.push(ids[0]);
    }
    rt.barrier();
    start.elapsed().as_secs_f64()
}

/// Best (minimum) elapsed time over `reps` runs of `f`.
fn best_of(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min)
}

/// Two overlapping quasi-Gaussian clusters (sum of four uniforms per
/// coordinate), `2 * n_per` rows by `dims` columns, labels alternating.
/// Overlap keeps nodes impure deep into the tree, which is the regime
/// where split finding dominates RF training.
fn synth_blobs(n_per: usize, dims: usize, gap: f64, seed: u64) -> (Matrix, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Matrix::zeros(2 * n_per, dims);
    let mut y = Vec::with_capacity(2 * n_per);
    for r in 0..2 * n_per {
        let cls = (r % 2) as u8;
        let center = if cls == 1 { gap } else { 0.0 };
        for v in x.row_mut(r) {
            let u: f64 = (0..4).map(|_| rng.random::<f64>()).sum::<f64>() - 2.0;
            *v = center + u;
        }
        y.push(cls);
    }
    (x, y)
}

fn main() {
    let args = Args::capture();
    let scale = args.get("scale").unwrap_or("full").to_string();
    let small = scale == "small";
    // The CI container has 1 CPU: threaded timings swing 20-30% run to
    // run, so full scale takes enough repetitions for best-of to settle.
    let reps: usize = args.get_or("reps", if small { 2 } else { 9 });
    let n_tasks = 10_000; // the acceptance workload: 10k no-op tasks
    let default_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(4, 8);
    let workers: usize = args.get_or("workers", default_workers);
    // `--fuse` drives the scheduler/obs sections through runtimes with
    // the graph-rewrite optimizer enabled, so CI measures the whole
    // suite in both configurations. The dedicated fusion section below
    // always measures both side by side.
    let fuse_all = args.has("fuse");

    println!("perf: scale={scale} tasks={n_tasks} workers={workers} reps={reps} fuse={fuse_all}");
    let dag = make_dag(n_tasks, 42);
    let new_threaded = || {
        Runtime::with_config(RuntimeConfig {
            mode: ExecMode::Threads(workers),
            fuse: fuse_all,
            ..RuntimeConfig::default()
        })
    };
    let new_inline = || {
        Runtime::with_config(RuntimeConfig {
            fuse: fuse_all,
            ..RuntimeConfig::default()
        })
    };

    // -- scheduler ----------------------------------------------------
    let t_new = best_of(reps, || drive_new(&new_threaded(), &dag));
    let t_inline = best_of(reps, || drive_new(&new_inline(), &dag));
    let t_legacy = best_of(reps, || drive_legacy(&LegacyRuntime::new(workers), &dag));
    let t_legacy_inline = best_of(reps, || drive_legacy(&LegacyRuntime::new(0), &dag));
    let new_tps = n_tasks as f64 / t_new;
    let inline_tps = n_tasks as f64 / t_inline;
    let legacy_tps = n_tasks as f64 / t_legacy;
    let legacy_inline_tps = n_tasks as f64 / t_legacy_inline;
    let speedup = new_tps / legacy_tps;
    let speedup_inline = inline_tps / legacy_inline_tps;
    println!(
        "scheduler (threaded x{workers}): new {new_tps:.0} tasks/s | legacy {legacy_tps:.0} tasks/s | speedup {speedup:.2}x"
    );
    println!(
        "scheduler (inline):      new {inline_tps:.0} tasks/s | legacy {legacy_inline_tps:.0} tasks/s | speedup {speedup_inline:.2}x"
    );

    // -- observability / telemetry overhead ---------------------------
    // `Runtime::threaded` keeps the full telemetry layer on (the
    // default). The gated comparison isolates exactly the live layer —
    // journal emits plus latency histograms — by flipping only
    // `telemetry` with `metrics` on in both arms. (Comparing against
    // `metrics: false`, as this section originally did, conflates the
    // new layer with the pre-existing trace/counter machinery, whose
    // cost is reported separately below as `trace_overhead_frac`,
    // ungated.) Measurement discipline (this used to be the flakiest
    // number in the suite, historically reporting noise like -2.6%):
    // one warmup pair is discarded, then the two configurations are
    // measured strictly interleaved (on, off, on, off, ...) with extra
    // repetitions so scheduler-timing drift on a loaded 1-CPU container
    // lands evenly on both sides, and best-of-N is taken per side. The
    // acceptance criterion (gated in `--check`) is telemetry-on within
    // 3% of telemetry-off.
    let no_telemetry = || {
        Runtime::with_config(RuntimeConfig {
            mode: ExecMode::Threads(workers),
            telemetry: false,
            fuse: fuse_all,
            ..RuntimeConfig::default()
        })
    };
    let no_metrics = || {
        Runtime::with_config(RuntimeConfig {
            mode: ExecMode::Threads(workers),
            metrics: false,
            telemetry: false,
            fuse: fuse_all,
            ..RuntimeConfig::default()
        })
    };
    let obs_reps = reps.max(15);
    // One long-lived runtime per arm: worker threads spawn once, so a
    // sample never includes pool start-up, and dense-table growth is
    // amortized identically on both sides.
    let rt_on = new_threaded();
    let rt_off = no_telemetry();
    let rt_bare = no_metrics();
    drive_new(&rt_on, &dag); // warmup, discarded
    drive_new(&rt_off, &dag);
    drive_new(&rt_bare, &dag);
    // Each timing sample is three consecutive drives (30k tasks):
    // single ~10ms drives swing several percent from scheduling alone.
    let sample = |rt: &Runtime| -> f64 { (0..3).map(|_| drive_new(rt, &dag)).sum() };
    let mut t_obs_on = f64::INFINITY;
    let mut t_obs_off = f64::INFINITY;
    let mut t_bare = f64::INFINITY;
    let mut ratios = Vec::with_capacity(obs_reps);
    for i in 0..obs_reps {
        // The two arms of each pair run back to back (alternating which
        // goes first) and are compared as a ratio: a container-wide
        // speed swing hits both sides of a pair roughly equally and
        // cancels, where a best-of over independent runs lets one lucky
        // rep on either side swing the result by 10%+.
        let (on_i, off_i) = if i % 2 == 0 {
            let on = sample(&rt_on);
            (on, sample(&rt_off))
        } else {
            let off = sample(&rt_off);
            (sample(&rt_on), off)
        };
        t_bare = t_bare.min(sample(&rt_bare));
        t_obs_on = t_obs_on.min(on_i);
        t_obs_off = t_obs_off.min(off_i);
        ratios.push(on_i / off_i);
    }
    ratios.sort_by(f64::total_cmp);
    let obs_on_tps = 3.0 * n_tasks as f64 / t_obs_on;
    let obs_off_tps = 3.0 * n_tasks as f64 / t_obs_off;
    let bare_tps = 3.0 * n_tasks as f64 / t_bare;
    // Median of the paired ratios, not a ratio of aggregates.
    let obs_overhead = ratios[ratios.len() / 2] - 1.0;
    let trace_overhead = bare_tps / obs_off_tps - 1.0;
    // One instrumented run to report what the journal captured on the
    // 10k-task workload (and that drops are being counted, not lost).
    let (journal_emitted, journal_dropped) = {
        let rt = new_threaded();
        drive_new(&rt, &dag);
        let t = rt.telemetry().expect("telemetry on by default");
        (t.journal().emitted(), t.journal().dropped())
    };
    println!(
        "scheduler telemetry: on {obs_on_tps:.0} tasks/s | off {obs_off_tps:.0} tasks/s | overhead {:.1}% | journal {journal_emitted} events ({journal_dropped} dropped)",
        obs_overhead * 100.0
    );
    println!(
        "scheduler tracing:   metrics off {bare_tps:.0} tasks/s | trace+counters overhead {:.1}%",
        trace_overhead * 100.0
    );

    // -- DES replay ---------------------------------------------------
    let sim_rt = Runtime::new();
    let mut outs: Vec<DataId> = Vec::with_capacity(dag.len());
    for deps in &dag {
        let inputs: Vec<DataId> = deps.iter().map(|&j| outs[j]).collect();
        let ids = sim_rt.submit_raw("noop".to_string(), 1, 0, inputs, 1, noop_body());
        outs.push(ids[0]);
    }
    let trace = sim_rt.finish();
    let cluster = ClusterSpec::marenostrum4(16);
    let opts = SimOptions::default();
    let mut makespan = 0.0;
    let t_sim = best_of(reps, || {
        let start = Instant::now();
        let report = simulate(&trace, &cluster, &opts);
        makespan = report.makespan_s;
        start.elapsed().as_secs_f64()
    });
    let events_per_s = trace.records.len() as f64 / t_sim;
    println!(
        "des: {} task events in {:.3}s -> {:.0} events/s (makespan {:.3}s)",
        trace.records.len(),
        t_sim,
        events_per_s,
        makespan
    );

    // -- GEMM ---------------------------------------------------------
    let n = if small { 256 } else { 512 };
    let a = Matrix::from_fn(n, n, |r, c| ((r * n + c) as f64 * 0.001).sin());
    let b = Matrix::from_fn(n, n, |r, c| ((r + c) as f64 * 0.002).cos());
    let mut sink = 0.0;
    let t_gemm = best_of(reps, || {
        let start = Instant::now();
        let c = a.matmul(&b);
        sink += c.get(0, 0);
        start.elapsed().as_secs_f64()
    });
    let gflops = 2.0 * (n as f64).powi(3) / t_gemm / 1e9;
    println!("gemm: {n}x{n}x{n} in {t_gemm:.4}s -> {gflops:.2} GFLOP/s (checksum {sink:.3})");

    // -- kernel floor: packed/FMA sgemm vs the scalar oracle ----------
    // The f32 GEMM behind the im2col conv lowering. The packed path
    // (KC-depth panel packing + MRxNR register-tiled microkernel,
    // FMA-dispatched per process at runtime) is swept against the
    // scalar oracle; results must agree within 1e-4 relative
    // (reassociation + FMA contraction), and the n=512 ratio gates as
    // the kernel floor. `LINALG_FORCE_SCALAR=1` routes the public entry
    // points back through the oracle, which CI uses to check the whole
    // suite on the fallback path.
    let kf_backend = linalg::sgemm::backend();
    let kf_sizes: Vec<usize> = if small {
        vec![256, 512]
    } else {
        vec![256, 512, 1024]
    };
    let mut kf_rows: Vec<Value> = Vec::new();
    let mut kf_speedup_512 = f64::NAN;
    let mut kf_sink = 0.0f32;
    for &kn in &kf_sizes {
        let fa: Vec<f32> = (0..kn * kn).map(|i| ((i as f32) * 1e-3).sin()).collect();
        let fb: Vec<f32> = (0..kn * kn).map(|i| ((i as f32) * 2e-3).cos()).collect();
        // Parity first: the dispatched path against the oracle.
        let mut want = vec![0.0f32; kn * kn];
        linalg::sgemm_nn_scalar(kn, kn, kn, &fa, &fb, &mut want);
        let mut got = vec![0.0f32; kn * kn];
        linalg::sgemm_nn(kn, kn, kn, &fa, &fb, &mut got);
        let mut kf_max_rel = 0.0f64;
        for (&g, &w) in got.iter().zip(&want) {
            kf_max_rel = kf_max_rel.max(((g - w).abs() / w.abs().max(1.0)) as f64);
        }
        assert!(
            kf_max_rel <= 1e-4,
            "sgemm n={kn}: dispatched path diverged from scalar by {kf_max_rel:.2e}"
        );
        let mut out = vec![0.0f32; kn * kn];
        let t_kf_scalar = best_of(reps, || {
            out.fill(0.0);
            let start = Instant::now();
            linalg::sgemm_nn_scalar(kn, kn, kn, &fa, &fb, &mut out);
            kf_sink += out[0];
            start.elapsed().as_secs_f64()
        });
        let t_kf_simd = best_of(reps, || {
            out.fill(0.0);
            let start = Instant::now();
            linalg::sgemm_nn(kn, kn, kn, &fa, &fb, &mut out);
            kf_sink += out[0];
            start.elapsed().as_secs_f64()
        });
        let flop = 2.0 * (kn as f64).powi(3);
        let kf_scalar_gflops = flop / t_kf_scalar / 1e9;
        let kf_simd_gflops = flop / t_kf_simd / 1e9;
        let kf_speedup = kf_simd_gflops / kf_scalar_gflops;
        if kn == 512 {
            kf_speedup_512 = kf_speedup;
        }
        println!(
            "kernel_floor sgemm {kn}x{kn}x{kn} [{kf_backend}]: packed {kf_simd_gflops:.2} GFLOP/s | scalar {kf_scalar_gflops:.2} GFLOP/s | speedup {kf_speedup:.2}x (max rel err {kf_max_rel:.1e})"
        );
        kf_rows.push(Value::Object(vec![
            ("n".into(), Value::Number(kn as f64)),
            ("scalar_gflops".into(), Value::Number(kf_scalar_gflops)),
            ("simd_gflops".into(), Value::Number(kf_simd_gflops)),
            ("speedup".into(), Value::Number(kf_speedup)),
            ("max_rel_err".into(), Value::Number(kf_max_rel)),
        ]));
    }
    // The floor the n=512 ratio must clear, per dispatch backend: the
    // FMA microkernel owes a real multiple; the generic packed kernel
    // must at least not lose; with the dispatch forced off both arms
    // run the identical scalar code, so only a timing-noise margin
    // separates them.
    let kf_floor = match kf_backend {
        "avx2+fma" => 1.8,
        "scalar-forced" => 0.90,
        _ => 1.0,
    };
    println!("kernel_floor gate: n=512 speedup {kf_speedup_512:.2}x vs floor {kf_floor:.2}x [{kf_backend}] (checksum {kf_sink:.3})");

    // -- conv: im2col + GEMM vs scalar loops --------------------------
    // The acceptance shape: a CNN-realistic mini-batch (the full-scale
    // setting); `small` shrinks the batch only, keeping the per-sample
    // shape so CI still exercises the same code paths.
    let (c_batch, c_in, c_out, c_len, c_k) = if small {
        (16usize, 16usize, 32usize, 256usize, 7usize)
    } else {
        (64, 16, 32, 256, 7)
    };
    let mut conv_rng = StdRng::seed_from_u64(11);
    let mut conv = Conv1d::new(c_in, c_out, c_k, 1, &mut conv_rng);
    let xs: Vec<Vec<f32>> = (0..c_batch)
        .map(|_| {
            (0..c_in * c_len)
                .map(|_| conv_rng.random::<f32>() * 2.0 - 1.0)
                .collect()
        })
        .collect();
    let c_ol = conv.out_len(c_len);
    let dout: Vec<f32> = (0..c_out * c_ol)
        .map(|_| conv_rng.random::<f32>() * 2.0 - 1.0)
        .collect();
    let mut csink = 0.0f32;
    let t_conv_f = best_of(reps, || {
        let start = Instant::now();
        for x in &xs {
            csink += conv.forward(x, c_len)[0];
        }
        start.elapsed().as_secs_f64()
    });
    let t_conv_f_naive = best_of(reps, || {
        let start = Instant::now();
        for x in &xs {
            csink += conv.forward_naive(x, c_len)[0];
        }
        start.elapsed().as_secs_f64()
    });
    let t_conv_b = best_of(reps, || {
        conv.gw.fill(0.0);
        conv.gb.fill(0.0);
        let start = Instant::now();
        for x in &xs {
            csink += conv.backward(x, c_len, &dout)[0];
        }
        start.elapsed().as_secs_f64()
    });
    let t_conv_b_naive = best_of(reps, || {
        conv.gw.fill(0.0);
        conv.gb.fill(0.0);
        let start = Instant::now();
        for x in &xs {
            csink += conv.backward_naive(x, c_len, &dout)[0];
        }
        start.elapsed().as_secs_f64()
    });
    let conv_f_sps = c_batch as f64 / t_conv_f;
    let conv_f_naive_sps = c_batch as f64 / t_conv_f_naive;
    let conv_b_sps = c_batch as f64 / t_conv_b;
    let conv_b_naive_sps = c_batch as f64 / t_conv_b_naive;
    let speedup_conv_f = conv_f_sps / conv_f_naive_sps;
    let speedup_conv_b = conv_b_sps / conv_b_naive_sps;
    println!(
        "conv fwd ({c_batch}x{c_in}->{c_out} len {c_len} k {c_k}): im2col {conv_f_sps:.0} samples/s | naive {conv_f_naive_sps:.0} samples/s | speedup {speedup_conv_f:.2}x"
    );
    println!(
        "conv bwd: im2col {conv_b_sps:.0} samples/s | naive {conv_b_naive_sps:.0} samples/s | speedup {speedup_conv_b:.2}x (checksum {csink:.3})"
    );

    // -- stft: plan-cached real FFT vs per-window complex FFT ---------
    let (s_len, s_count) = if small {
        (6_000usize, 8usize)
    } else {
        (18_300, 24) // the paper's zero-padded recording length
    };
    let s_cfg = SpectrogramConfig {
        nperseg: 256,
        noverlap: 128,
        fs: 300.0,
    };
    let mut s_rng = StdRng::seed_from_u64(13);
    let signals: Vec<Vec<f64>> = (0..s_count)
        .map(|_| (0..s_len).map(|_| s_rng.random::<f64>() - 0.5).collect())
        .collect();
    let mut ssink = 0.0;
    let t_stft_plan = best_of(reps, || {
        let mut plan = SpectrogramPlan::new(&s_cfg);
        let start = Instant::now();
        for sig in &signals {
            ssink += plan.compute(sig).get(0, 0);
        }
        start.elapsed().as_secs_f64()
    });
    let t_stft_legacy = best_of(reps, || {
        let start = Instant::now();
        for sig in &signals {
            ssink += spectrogram_legacy(sig, &s_cfg).get(0, 0);
        }
        start.elapsed().as_secs_f64()
    });
    let stft_sps = s_count as f64 / t_stft_plan;
    let stft_legacy_sps = s_count as f64 / t_stft_legacy;
    let speedup_stft = stft_sps / stft_legacy_sps;
    println!(
        "stft ({s_count} signals x {s_len} samples, nperseg {}): plan {stft_sps:.1} signals/s | legacy {stft_legacy_sps:.1} signals/s | speedup {speedup_stft:.2}x (checksum {ssink:.3e})",
        s_cfg.nperseg
    );

    // -- rf_split: pre-sorted split finding vs per-node re-sorting ----
    let (rf_per, rf_dims, rf_trees) = if small {
        (400usize, 10usize, 2u64)
    } else {
        (1500, 12, 4)
    };
    let (rx, ry) = synth_blobs(rf_per, rf_dims, 0.5, 17);
    let rf_params = RfParams {
        max_depth: 12,
        min_samples_split: 2,
        seed: 17,
        ..Default::default()
    };
    let mut rf_nodes = 0usize;
    let t_rf_fast = best_of(reps, || {
        rf_nodes = 0;
        let start = Instant::now();
        for est in 0..rf_trees {
            rf_nodes += build_tree(&rx, &ry, &rf_params, est).nodes.len();
        }
        start.elapsed().as_secs_f64()
    });
    let t_rf_legacy = best_of(reps, || {
        let start = Instant::now();
        for est in 0..rf_trees {
            build_tree_legacy(&rx, &ry, &rf_params, est);
        }
        start.elapsed().as_secs_f64()
    });
    // The whole point of the fast splitter is that it changes nothing:
    // same trees, just faster. Assert it on the benchmark data too.
    for est in 0..rf_trees {
        assert_eq!(
            build_tree(&rx, &ry, &rf_params, est).nodes,
            build_tree_legacy(&rx, &ry, &rf_params, est).nodes,
            "fast and legacy split finders diverged (est {est})"
        );
    }
    let rf_tps = rf_trees as f64 / t_rf_fast;
    let rf_legacy_tps = rf_trees as f64 / t_rf_legacy;
    let speedup_rf = rf_tps / rf_legacy_tps;
    println!(
        "rf_split ({} samples x {rf_dims} feats, {rf_trees} trees, {rf_nodes} nodes): presorted {rf_tps:.2} trees/s | legacy {rf_legacy_tps:.2} trees/s | speedup {speedup_rf:.2}x",
        2 * rf_per
    );

    // -- dataplane: clone-based vs INOUT ds-array ops -----------------
    // The scaler-shaped pipeline (scale, center, divide — all
    // elementwise, repeated) over paper-scale blocks, run once through
    // the clone-based block ops and once through the INOUT variants.
    // The blocks are single-consumer, so the INOUT run should steal
    // every version and clone nothing.
    let (dp_rows, dp_cols, dp_rb, dp_cb) = if small {
        (512usize, 384usize, 128usize, 128usize)
    } else {
        (3000, 1500, 500, 500) // paper block size: 500x500
    };
    let dp_chain = 3usize; // rounds of (scale, center, divide)
    let dp_x = Matrix::from_fn(dp_rows, dp_cols, |r, c| {
        ((r * dp_cols + c) as f64 * 1e-4).sin()
    });
    let dp_v: Vec<f64> = (0..dp_cols).map(|c| 1.0 + (c % 7) as f64 * 0.25).collect();

    let run_dp_clone = |rt: &Runtime| -> Matrix {
        let v = rt.put(dp_v.clone());
        let mut a = DsArray::from_matrix_owned(rt, dp_x.clone(), dp_rb, dp_cb);
        for _ in 0..dp_chain {
            a = a
                .map_blocks(rt, "dp_scale", |b| {
                    let mut o = b.clone();
                    o.scale(1.0009);
                    o
                })
                .sub_row_vector(rt, v)
                .div_row_vector(rt, v);
        }
        a.collect(rt)
    };
    let run_dp_inout = |rt: &Runtime| -> Matrix {
        let v = rt.put(dp_v.clone());
        let mut a = DsArray::from_matrix_owned(rt, dp_x.clone(), dp_rb, dp_cb);
        for _ in 0..dp_chain {
            a = a
                .map_blocks_inplace(rt, "dp_scale", |b| b.scale(1.0009))
                .sub_row_vector_inplace(rt, v)
                .div_row_vector_inplace(rt, v);
        }
        a.collect(rt)
    };
    // Zero-copy must mean zero difference: same pipeline, same result.
    assert_eq!(
        run_dp_clone(&Runtime::new()),
        run_dp_inout(&Runtime::new()),
        "INOUT ds-array pipeline diverged from the clone-based one"
    );
    let mut dp_sink = 0.0;
    let t_dp_clone = best_of(reps, || {
        let rt = Runtime::new();
        let start = Instant::now();
        dp_sink += run_dp_clone(&rt).get(0, 0);
        start.elapsed().as_secs_f64()
    });
    let mut dp_steals = 0u64;
    let mut dp_copies = 0u64;
    let t_dp_inout = best_of(reps, || {
        let rt = Runtime::new();
        let start = Instant::now();
        dp_sink += run_dp_inout(&rt).get(0, 0);
        let elapsed = start.elapsed().as_secs_f64();
        let st = rt.stats();
        dp_steals = st.inout_steals;
        dp_copies = st.inout_copies;
        elapsed
    });
    let dp_elems = (dp_chain * 3 * dp_rows * dp_cols) as f64;
    let dp_clone_meps = dp_elems / t_dp_clone / 1e6;
    let dp_inout_meps = dp_elems / t_dp_inout / 1e6;
    let speedup_dp = dp_inout_meps / dp_clone_meps;
    let dp_steal_rate = if dp_steals + dp_copies > 0 {
        dp_steals as f64 / (dp_steals + dp_copies) as f64
    } else {
        0.0
    };
    // Blocks divide the shape evenly at both scales, so every stolen
    // block version avoided exactly one block-sized clone.
    let dp_bytes_stolen = dp_steals as f64 * (dp_rb * dp_cb * 8) as f64;
    println!(
        "dataplane ({dp_rows}x{dp_cols}, blocks {dp_rb}x{dp_cb}, {} elementwise ops): inout {dp_inout_meps:.0} Melem/s | clone {dp_clone_meps:.0} Melem/s | speedup {speedup_dp:.2}x",
        dp_chain * 3
    );
    println!(
        "dataplane inout params: {dp_steals} stolen / {dp_copies} copied ({:.0}% steal rate, {:.1} MB of clones avoided, checksum {dp_sink:.3})",
        dp_steal_rate * 100.0,
        dp_bytes_stolen / 1e6
    );

    // -- locality: affinity-steered work stealing A/B -----------------
    // The same blocked elementwise chain, threaded, with the locality
    // heuristic on vs off. Each block's 9-op chain re-reads the block a
    // producer just wrote, so steering the consumer to the producer's
    // deque keeps the block in that worker's cache. The heuristic is
    // advisory only — the outputs must be bit-identical — and the
    // hit-rate gate (not the throughput ratio, which is noise on the
    // 1-CPU CI container) is what proves the steering engaged.
    let loc_rt = |locality: bool| {
        Runtime::with_config(RuntimeConfig {
            mode: ExecMode::Threads(workers),
            locality,
            ..RuntimeConfig::default()
        })
    };
    // Finer blocks than the dataplane section: enough ready tasks that
    // the submission-time injector flushes engage the worker pool (at
    // the dataplane granularity the driver's cooperative help drains
    // the whole chain by itself and no worker ever runs a task).
    let (loc_rb, loc_cb) = if small {
        (32usize, 32usize)
    } else {
        (100, 100)
    };
    let run_loc = |rt: &Runtime| -> Matrix {
        let v = rt.put(dp_v.clone());
        let mut a = DsArray::from_matrix_owned(rt, dp_x.clone(), loc_rb, loc_cb);
        for _ in 0..dp_chain {
            a = a
                .map_blocks_inplace(rt, "loc_scale", |b| b.scale(1.0009))
                .sub_row_vector_inplace(rt, v)
                .div_row_vector_inplace(rt, v);
        }
        a.collect(rt)
    };
    assert_eq!(
        run_loc(&loc_rt(true)),
        run_loc(&loc_rt(false)),
        "locality steering changed the elementwise chain output"
    );
    let loc_reps = reps.max(5);
    let mut t_loc_on = f64::INFINITY;
    let mut t_loc_off = f64::INFINITY;
    let mut loc_sink = 0.0;
    let (mut loc_hits, mut loc_misses, mut loc_stolen) = (0u64, 0u64, 0u64);
    for _ in 0..loc_reps {
        // Interleaved pairs, as the obs/fusion sections do, so
        // container-wide drift lands on both arms.
        let rt = loc_rt(true);
        let start = Instant::now();
        loc_sink += run_loc(&rt).get(0, 0);
        t_loc_on = t_loc_on.min(start.elapsed().as_secs_f64());
        // Accumulated across repetitions: any single rep can land
        // entirely on the driver's cooperative help path (no worker
        // runs a task, so nothing is hinted) — the aggregate is what
        // proves the steering engages.
        let st = rt.stats();
        loc_hits += st.locality_hits;
        loc_misses += st.locality_misses;
        loc_stolen += st.stolen_tasks;
        let rt = loc_rt(false);
        let start = Instant::now();
        loc_sink += run_loc(&rt).get(0, 0);
        t_loc_off = t_loc_off.min(start.elapsed().as_secs_f64());
    }
    let loc_on_meps = dp_elems / t_loc_on / 1e6;
    let loc_off_meps = dp_elems / t_loc_off / 1e6;
    let speedup_locality = loc_on_meps / loc_off_meps;
    let loc_hit_rate = if loc_hits + loc_misses > 0 {
        loc_hits as f64 / (loc_hits + loc_misses) as f64
    } else {
        0.0
    };
    println!(
        "locality (threaded x{workers}, {dp_rows}x{dp_cols} chain, blocks {loc_rb}x{loc_cb}): on {loc_on_meps:.0} Melem/s | off {loc_off_meps:.0} Melem/s | ratio {speedup_locality:.2}x (checksum {loc_sink:.3})"
    );
    println!(
        "locality hints: {loc_hits} hits / {loc_misses} misses ({:.0}% hit rate, {loc_stolen} tasks stolen)",
        loc_hit_rate * 100.0
    );

    // -- fusion: graph-rewrite optimizer ------------------------------
    // (a) The PR-4 elementwise chain (3 rounds of scale, center,
    // divide = 9 per-block ops) at COMPSs-granularity blocks: per-task
    // work is a few microseconds, the regime where per-task overhead
    // dominates and fusing each block's 9-op chain into one task pays.
    // Results must be bit-identical; only the dispatched-task count and
    // throughput change.
    let (fu_rows, fu_cols, fu_rb, fu_cb) = if small {
        (64usize, 224usize, 8usize, 8usize) // 224 blocks x 9 = 2016 tasks
    } else {
        (128, 448, 8, 8) // 896 blocks x 9 ops = 8064 tasks, one window
    };
    let fu_chain = 3usize;
    let fu_x = Matrix::from_fn(fu_rows, fu_cols, |r, c| {
        ((r * fu_cols + c) as f64 * 1e-4).sin()
    });
    let fu_v: Vec<f64> = (0..fu_cols).map(|c| 1.0 + (c % 7) as f64 * 0.25).collect();
    let fu_rt = |fuse: bool| {
        Runtime::with_config(RuntimeConfig {
            mode: ExecMode::Threads(1),
            fuse,
            ..RuntimeConfig::default()
        })
    };
    let run_fu = |rt: &Runtime| -> Matrix {
        let v = rt.put(fu_v.clone());
        let mut a = DsArray::from_matrix_owned(rt, fu_x.clone(), fu_rb, fu_cb);
        for _ in 0..fu_chain {
            a = a
                .map_blocks_inplace(rt, "fu_scale", |b| b.scale(1.0009))
                .sub_row_vector_inplace(rt, v)
                .div_row_vector_inplace(rt, v);
        }
        a.collect(rt)
    };
    // Bit-identity and dispatch counts, measured once.
    let rt_off = fu_rt(false);
    let rt_on = fu_rt(true);
    let fu_out_off = run_fu(&rt_off);
    let fu_out_on = run_fu(&rt_on);
    let fu_identical = fu_out_on == fu_out_off;
    assert!(fu_identical, "fusion changed the elementwise chain output");
    let fu_tasks_unfused = rt_off.trace().user_task_count();
    let fu_tasks_fused = rt_on.trace().user_task_count();
    let fu_stats = rt_on.stats();
    let mut fu_sink = 0.0;
    // Interleave fused/unfused reps (as the obs section does) and take
    // each side's best: one run is ~25 ms, well inside this box's noise
    // floor, and the `--check` gate compares the two directly.
    let fu_reps = reps.max(9);
    let mut t_fu_off = f64::INFINITY;
    let mut t_fu_on = f64::INFINITY;
    for _ in 0..fu_reps {
        let rt = fu_rt(false);
        let start = Instant::now();
        fu_sink += run_fu(&rt).get(0, 0);
        t_fu_off = t_fu_off.min(start.elapsed().as_secs_f64());
        let rt = fu_rt(true);
        let start = Instant::now();
        fu_sink += run_fu(&rt).get(0, 0);
        t_fu_on = t_fu_on.min(start.elapsed().as_secs_f64());
    }
    let fu_elems = (fu_chain * 3 * fu_rows * fu_cols) as f64;
    let fu_off_meps = fu_elems / t_fu_off / 1e6;
    let fu_on_meps = fu_elems / t_fu_on / 1e6;
    let speedup_fused = fu_on_meps / fu_off_meps;
    println!(
        "fusion chain ({fu_rows}x{fu_cols}, blocks {fu_rb}x{fu_cb}, {} ops): fused {fu_on_meps:.0} Melem/s | unfused {fu_off_meps:.0} Melem/s | speedup {speedup_fused:.2}x (bit-identical, checksum {fu_sink:.3})",
        fu_chain * 3
    );
    println!(
        "fusion chain tasks: {fu_tasks_unfused} submitted -> {fu_tasks_fused} dispatched ({} fused groups, {} members elided)",
        fu_stats.fused_tasks, fu_stats.tasks_elided
    );

    // (b) The PCA pipeline (col-sum map-reduce, centering, gram
    // map-reduce, eigh, projection): tasks submitted vs dispatched.
    let (pca_n, pca_d, pca_rb) = if small {
        (256usize, 8usize, 32usize)
    } else {
        (1024, 16, 128)
    };
    let pca_x = Matrix::from_fn(pca_n, pca_d, |r, c| {
        ((r * 31 + c * 17) as f64 * 0.013).sin()
    });
    let run_pca = |fuse: bool| -> (Matrix, taskrt::Trace) {
        let rt = fu_rt(fuse);
        let ds = DsArray::from_matrix_owned(&rt, pca_x.clone(), pca_rb, pca_d);
        let pca = Pca::fit(&rt, &ds, Components::Count(4));
        let proj = pca.transform(&rt, &ds).collect(&rt);
        rt.barrier();
        (proj, rt.finish())
    };
    let (pca_proj_off, pca_trace_off) = run_pca(false);
    let (pca_proj_on, pca_trace_on) = run_pca(true);
    assert_eq!(
        pca_proj_on, pca_proj_off,
        "fusion changed the PCA projection"
    );
    let pca_submitted = pca_trace_off.user_task_count();
    let pca_dispatched = pca_trace_on.user_task_count();
    let pca_reduction = 1.0 - pca_dispatched as f64 / pca_submitted as f64;
    println!(
        "fusion pca ({pca_n}x{pca_d}, rb {pca_rb}): {pca_submitted} submitted -> {pca_dispatched} dispatched ({:.1}% fewer, bit-identical)",
        pca_reduction * 100.0
    );

    // (c) DES replay of both schedules on the paper's 288-core
    // MareNostrum 4 partition with a centralized per-task dispatch
    // cost; the fused Chrome trace is written for inspection (member
    // names survive inside the `fused(...)` labels).
    let fu_cluster = ClusterSpec::marenostrum4(6);
    let fu_opts = SimOptions {
        dispatch_overhead_s: 1e-3,
        ..SimOptions::default()
    };
    let des_off = simulate(&pca_trace_off, &fu_cluster, &fu_opts);
    let des_on = simulate(&fuse_trace(&pca_trace_off), &fu_cluster, &fu_opts);
    println!(
        "fusion des (288 cores, 1ms dispatch): fused makespan {:.3}s ({} events) | unfused {:.3}s ({} events)",
        des_on.makespan_s,
        des_on.schedule.len(),
        des_off.makespan_s,
        des_off.schedule.len()
    );
    write_artifact("out/fused_pca.trace.json", &chrome_trace(&pca_trace_on))
        .expect("write out/fused_pca.trace.json");

    // -- artifact -----------------------------------------------------
    let doc = Value::Object(vec![
        ("scale".into(), Value::String(scale)),
        ("fuse".into(), Value::Bool(fuse_all)),
        (
            "scheduler".into(),
            Value::Object(vec![
                ("tasks".into(), Value::Number(n_tasks as f64)),
                ("workers".into(), Value::Number(workers as f64)),
                ("new_threaded_tasks_per_s".into(), Value::Number(new_tps)),
                ("new_inline_tasks_per_s".into(), Value::Number(inline_tps)),
                (
                    "legacy_threaded_tasks_per_s".into(),
                    Value::Number(legacy_tps),
                ),
                (
                    "legacy_inline_tasks_per_s".into(),
                    Value::Number(legacy_inline_tps),
                ),
                ("speedup_threaded".into(), Value::Number(speedup)),
                ("speedup_inline".into(), Value::Number(speedup_inline)),
                ("obs_on_tasks_per_s".into(), Value::Number(obs_on_tps)),
                ("obs_off_tasks_per_s".into(), Value::Number(obs_off_tps)),
                ("obs_overhead_frac".into(), Value::Number(obs_overhead)),
                ("trace_overhead_frac".into(), Value::Number(trace_overhead)),
                (
                    "journal_events".into(),
                    Value::Number(journal_emitted as f64),
                ),
                (
                    "journal_dropped".into(),
                    Value::Number(journal_dropped as f64),
                ),
            ]),
        ),
        (
            "des".into(),
            Value::Object(vec![
                ("tasks".into(), Value::Number(trace.records.len() as f64)),
                ("events_per_s".into(), Value::Number(events_per_s)),
                ("makespan_s".into(), Value::Number(makespan)),
            ]),
        ),
        (
            "gemm".into(),
            Value::Object(vec![
                ("n".into(), Value::Number(n as f64)),
                ("gflops".into(), Value::Number(gflops)),
            ]),
        ),
        (
            "kernel_floor".into(),
            Value::Object(vec![
                ("backend".into(), Value::String(kf_backend.to_string())),
                ("floor_512".into(), Value::Number(kf_floor)),
                ("speedup_512".into(), Value::Number(kf_speedup_512)),
                ("sweep".into(), Value::Array(kf_rows)),
            ]),
        ),
        (
            "locality".into(),
            Value::Object(vec![
                ("workers".into(), Value::Number(workers as f64)),
                ("block_rows".into(), Value::Number(loc_rb as f64)),
                ("block_cols".into(), Value::Number(loc_cb as f64)),
                ("on_melems_per_s".into(), Value::Number(loc_on_meps)),
                ("off_melems_per_s".into(), Value::Number(loc_off_meps)),
                ("speedup_locality".into(), Value::Number(speedup_locality)),
                ("locality_hits".into(), Value::Number(loc_hits as f64)),
                ("locality_misses".into(), Value::Number(loc_misses as f64)),
                ("hit_rate".into(), Value::Number(loc_hit_rate)),
                ("stolen_tasks".into(), Value::Number(loc_stolen as f64)),
            ]),
        ),
        (
            "conv".into(),
            Value::Object(vec![
                ("batch".into(), Value::Number(c_batch as f64)),
                ("in_ch".into(), Value::Number(c_in as f64)),
                ("out_ch".into(), Value::Number(c_out as f64)),
                ("len".into(), Value::Number(c_len as f64)),
                ("kernel".into(), Value::Number(c_k as f64)),
                ("forward_samples_per_s".into(), Value::Number(conv_f_sps)),
                (
                    "forward_naive_samples_per_s".into(),
                    Value::Number(conv_f_naive_sps),
                ),
                ("backward_samples_per_s".into(), Value::Number(conv_b_sps)),
                (
                    "backward_naive_samples_per_s".into(),
                    Value::Number(conv_b_naive_sps),
                ),
                ("speedup_forward".into(), Value::Number(speedup_conv_f)),
                ("speedup_backward".into(), Value::Number(speedup_conv_b)),
            ]),
        ),
        (
            "stft".into(),
            Value::Object(vec![
                ("signals".into(), Value::Number(s_count as f64)),
                ("signal_len".into(), Value::Number(s_len as f64)),
                ("nperseg".into(), Value::Number(s_cfg.nperseg as f64)),
                ("plan_signals_per_s".into(), Value::Number(stft_sps)),
                (
                    "legacy_signals_per_s".into(),
                    Value::Number(stft_legacy_sps),
                ),
                ("speedup_plan".into(), Value::Number(speedup_stft)),
            ]),
        ),
        (
            "dataplane".into(),
            Value::Object(vec![
                ("rows".into(), Value::Number(dp_rows as f64)),
                ("cols".into(), Value::Number(dp_cols as f64)),
                ("block_rows".into(), Value::Number(dp_rb as f64)),
                ("block_cols".into(), Value::Number(dp_cb as f64)),
                (
                    "elementwise_ops".into(),
                    Value::Number((dp_chain * 3) as f64),
                ),
                ("clone_melems_per_s".into(), Value::Number(dp_clone_meps)),
                ("inout_melems_per_s".into(), Value::Number(dp_inout_meps)),
                ("speedup_inout".into(), Value::Number(speedup_dp)),
                ("inout_steals".into(), Value::Number(dp_steals as f64)),
                ("inout_copies".into(), Value::Number(dp_copies as f64)),
                ("steal_rate".into(), Value::Number(dp_steal_rate)),
                ("bytes_stolen".into(), Value::Number(dp_bytes_stolen)),
            ]),
        ),
        (
            "fusion".into(),
            Value::Object(vec![
                ("chain_rows".into(), Value::Number(fu_rows as f64)),
                ("chain_cols".into(), Value::Number(fu_cols as f64)),
                ("chain_block_rows".into(), Value::Number(fu_rb as f64)),
                ("chain_block_cols".into(), Value::Number(fu_cb as f64)),
                (
                    "chain_elementwise_ops".into(),
                    Value::Number((fu_chain * 3) as f64),
                ),
                (
                    "chain_tasks_submitted".into(),
                    Value::Number(fu_tasks_unfused as f64),
                ),
                (
                    "chain_tasks_dispatched".into(),
                    Value::Number(fu_tasks_fused as f64),
                ),
                (
                    "chain_fused_tasks".into(),
                    Value::Number(fu_stats.fused_tasks as f64),
                ),
                (
                    "chain_tasks_elided".into(),
                    Value::Number(fu_stats.tasks_elided as f64),
                ),
                ("unfused_melems_per_s".into(), Value::Number(fu_off_meps)),
                ("fused_melems_per_s".into(), Value::Number(fu_on_meps)),
                ("speedup_fused".into(), Value::Number(speedup_fused)),
                ("bit_identical".into(), Value::Bool(fu_identical)),
                (
                    "pca_tasks_submitted".into(),
                    Value::Number(pca_submitted as f64),
                ),
                (
                    "pca_tasks_dispatched".into(),
                    Value::Number(pca_dispatched as f64),
                ),
                (
                    "pca_dispatch_reduction".into(),
                    Value::Number(pca_reduction),
                ),
                (
                    "des_unfused_makespan_s".into(),
                    Value::Number(des_off.makespan_s),
                ),
                (
                    "des_fused_makespan_s".into(),
                    Value::Number(des_on.makespan_s),
                ),
                (
                    "des_unfused_events".into(),
                    Value::Number(des_off.schedule.len() as f64),
                ),
                (
                    "des_fused_events".into(),
                    Value::Number(des_on.schedule.len() as f64),
                ),
            ]),
        ),
        (
            "rf_split".into(),
            Value::Object(vec![
                ("samples".into(), Value::Number(2.0 * rf_per as f64)),
                ("features".into(), Value::Number(rf_dims as f64)),
                ("trees".into(), Value::Number(rf_trees as f64)),
                ("nodes".into(), Value::Number(rf_nodes as f64)),
                ("presorted_trees_per_s".into(), Value::Number(rf_tps)),
                ("legacy_trees_per_s".into(), Value::Number(rf_legacy_tps)),
                ("speedup_presorted".into(), Value::Number(speedup_rf)),
            ]),
        ),
    ]);
    write_artifact("out/perf.json", &doc.pretty()).expect("write out/perf.json");

    // -- gate (--check) -----------------------------------------------
    if args.has("check") {
        // Under `--fuse` the scheduler sections run through fused
        // runtimes on the random no-op DAG — the anti-fusion regime
        // (shallow chains, zero per-task work), where windowing is pure
        // overhead. The legacy-comparison gates only apply to the
        // default path; the fused run still gates bit-identity, the
        // fusion section, and every runtime-independent kernel.
        let (sched_threaded, sched_inline) = if fuse_all {
            (f64::INFINITY, f64::INFINITY)
        } else {
            (speedup, speedup_inline)
        };
        let gates = [
            ("scheduler.speedup_threaded", sched_threaded),
            ("scheduler.speedup_inline", sched_inline),
            ("conv.speedup_forward", speedup_conv_f),
            ("conv.speedup_backward", speedup_conv_b),
            ("stft.speedup_plan", speedup_stft),
            ("rf_split.speedup_presorted", speedup_rf),
            ("dataplane.speedup_inout", speedup_dp),
            ("fusion.speedup_fused", speedup_fused),
        ];
        let mut ok = true;
        for (name, v) in gates {
            if v < 1.0 || v.is_nan() {
                eprintln!("check FAILED: {name} = {v:.3} < 1.0");
                ok = false;
            }
        }
        // A single-consumer pipeline that mostly copies means the steal
        // path regressed even if throughput hasn't caught it yet.
        if dp_steal_rate <= 0.5 || dp_steal_rate.is_nan() {
            eprintln!("check FAILED: dataplane.steal_rate = {dp_steal_rate:.3} <= 0.5");
            ok = false;
        }
        // Kernel floor: the dispatched sgemm must clear its per-backend
        // floor at n=512 (parity with the oracle was asserted inline).
        if kf_speedup_512 < kf_floor || kf_speedup_512.is_nan() {
            eprintln!(
                "check FAILED: kernel_floor.speedup_512 = {kf_speedup_512:.3} < {kf_floor:.2} [{kf_backend}]"
            );
            ok = false;
        }
        // Locality: the hint must actually fire (hits exist and
        // dominate) — this holds even on a 1-CPU container, where the
        // throughput ratio itself is noise, so that ratio only gates
        // against outright regression.
        if loc_hits == 0 {
            eprintln!("check FAILED: locality.locality_hits = 0");
            ok = false;
        }
        if loc_hit_rate <= 0.5 || loc_hit_rate.is_nan() {
            eprintln!("check FAILED: locality.hit_rate = {loc_hit_rate:.3} <= 0.5");
            ok = false;
        }
        if speedup_locality < 0.95 || speedup_locality.is_nan() {
            eprintln!("check FAILED: locality.speedup_locality = {speedup_locality:.3} < 0.95");
            ok = false;
        }
        // Fusion is an optimizer: it must never change values and must
        // actually shrink the dispatched PCA schedule.
        if !fu_identical {
            eprintln!("check FAILED: fusion.bit_identical = false");
            ok = false;
        }
        if pca_reduction < 0.30 || pca_reduction.is_nan() {
            eprintln!("check FAILED: fusion.pca_dispatch_reduction = {pca_reduction:.3} < 0.30");
            ok = false;
        }
        if des_on.makespan_s >= des_off.makespan_s {
            eprintln!(
                "check FAILED: fused DES makespan {:.3}s >= unfused {:.3}s",
                des_on.makespan_s, des_off.makespan_s
            );
            ok = false;
        }
        // Telemetry must stay near the noise floor. The journal now
        // retains the full event stream of a 10k-task run (the old
        // 512-slot rings dropped ~75% of events, and a drop is cheaper
        // than a write that wraps past L1), so the emit path pays ~2%
        // on the no-op DAG — the worst case, with zero useful work to
        // hide behind. Gate at 5%: full-stream retention plus noise
        // margin, still small against any real task body.
        if obs_overhead >= 0.05 || obs_overhead.is_nan() {
            eprintln!("check FAILED: scheduler.obs_overhead_frac = {obs_overhead:.3} >= 0.05");
            ok = false;
        }
        if journal_dropped > 0 && journal_emitted == 0 {
            eprintln!("check FAILED: journal dropped {journal_dropped} events but emitted none");
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
        println!(
            "check: all speedup_* fields >= 1.0, kernel floor {kf_speedup_512:.2}x >= {kf_floor:.2}x [{kf_backend}], locality hit rate {:.0}%, steal rate > 50%, telemetry overhead {:.1}% < 5%, fusion bit-identical with {:.0}% fewer PCA dispatches",
            loc_hit_rate * 100.0,
            obs_overhead * 100.0,
            pca_reduction * 100.0
        );
    }
}
