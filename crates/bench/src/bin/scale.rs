//! Million-task streaming benchmark: bounded-memory submission, slot
//! recycling, and fair-share multi-tenant dispatch under an
//! adversarial load mix.
//!
//! Where `perf` measures hot-path throughput on a 10k-task DAG that
//! fits comfortably in the task tables, this bin measures the regime
//! the streaming runtime exists for: DAGs one to two orders of
//! magnitude larger than the live window, submitted from a driver
//! loop that releases handles as it goes. Three sections:
//!
//! * **throughput** — the same sliding-window random DAG driven at
//!   10k tasks and at 1M tasks (`--scale small` shrinks the large run
//!   to 250k) through a streaming runtime. Reported as tasks/second;
//!   `ratio_large` is large-vs-10k on identical configuration. A flat
//!   runtime degrades here as its tables grow without bound; the
//!   streaming runtime must hold ≥ 0.5× its 10k rate.
//! * **residency** — [`taskrt::Runtime::table_stats`] after the large
//!   run: every task was allocated, but the peak *live* slot count
//!   must stay proportional to the backpressure window (high
//!   watermark + release-window + scheduler slack), not the DAG.
//! * **fairness** — two tenants with equal weights submit an
//!   adversarial 10:1 task mix from concurrent driver threads. At the
//!   instant the small tenant's backlog drains, the deficit-round-
//!   robin dispatcher must have given the large tenant its weighted
//!   share of completions — within 15% — rather than letting the
//!   flood starve the small tenant (or vice versa).
//!
//! Results are merged into `out/perf.json` as the `"scale"` section
//! (run after `perf`, which rewrites the file whole). Usage:
//! `cargo run --release -p bench --bin scale -- [--scale small|full]
//! [--workers N] [--check]`; `--check` exits non-zero if the large-DAG
//! throughput ratio, the residency bound, or the fairness share fails.

use bench::report::{write_artifact, Args};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;
use taskrt::json::Value;
use taskrt::runtime::AnyArc;
use taskrt::{DataId, ExecMode, Runtime, RuntimeConfig, StreamConfig};

/// Dependency look-back of the sliding-window DAG: task `i` may read
/// any output still inside the driver's retention ring.
const WINDOW: usize = 64;

/// One shared output value for every no-op task (cloning an `Arc` is a
/// refcount bump): keeps the measured work scheduler-only.
fn unit() -> Arc<u8> {
    static UNIT: std::sync::OnceLock<Arc<u8>> = std::sync::OnceLock::new();
    UNIT.get_or_init(|| Arc::new(0u8)).clone()
}

type NoopFn = Box<dyn FnMut(&taskrt::TaskCtx, &mut Vec<AnyArc>) -> Vec<(AnyArc, usize)> + Send>;

fn noop_body() -> NoopFn {
    Box::new(|_ctx, _ins| vec![(unit() as AnyArc, 1)])
}

fn streaming_rt(workers: usize, high: usize, low: usize) -> Runtime {
    Runtime::with_config(RuntimeConfig {
        mode: ExecMode::Threads(workers),
        stream: Some(StreamConfig { high, low }),
        ..RuntimeConfig::default()
    })
}

/// Drives `n` tasks of the sliding-window random DAG: each task reads
/// up to 3 outputs from the retention ring, and the driver releases
/// each output as it slides out of the window — the streaming
/// submission idiom. Dependency shape is identical at every `n`, so
/// throughput at different sizes is directly comparable. Returns
/// elapsed seconds.
fn drive_windowed(rt: &Runtime, n: usize, seed: u64) -> f64 {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let start = Instant::now();
    let mut ring: VecDeque<DataId> = VecDeque::with_capacity(WINDOW + 1);
    for _ in 0..n {
        let r = next();
        let ndeps = (r % 4) as usize;
        let mut inputs = Vec::with_capacity(ndeps);
        if !ring.is_empty() {
            for k in 0..ndeps {
                let j = ((r >> (8 + 8 * k)) as usize) % ring.len();
                inputs.push(ring[j]);
            }
        }
        let ids = rt.submit_raw("noop".to_string(), 0, 0, inputs, 1, noop_body());
        ring.push_back(ids[0]);
        if ring.len() > WINDOW {
            // The driver is done with this output: its slot may be
            // recycled once in-flight readers finish.
            rt.release_id(ring.pop_front().expect("non-empty ring"));
        }
    }
    for id in ring.drain(..) {
        rt.release_id(id);
    }
    rt.barrier();
    start.elapsed().as_secs_f64()
}

/// Scheduler-visible busy work (~10us): long enough that dispatch
/// order, not submission order, decides who finishes first.
fn spin(iters: u64) -> u64 {
    let mut x = 0x9E37_79B9u64;
    for i in 0..iters {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    std::hint::black_box(x)
}

fn main() {
    let args = Args::capture();
    let scale = args.get("scale").unwrap_or("full").to_string();
    let small = scale == "small";
    let default_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(4, 8);
    let workers: usize = args.get_or("workers", default_workers);
    let n_base = 10_000usize;
    let n_large: usize = args.get_or("tasks", if small { 250_000 } else { 1_000_000 });
    let (high, low) = (4096usize, 2048usize);
    println!(
        "scale: scale={scale} base={n_base} large={n_large} workers={workers} watermarks={high}/{low}"
    );

    // -- throughput: 10k vs large on identical streaming config -------
    // The base rate takes best-of-3 (10k drives are noise-prone); the
    // large run is long enough to be its own average.
    let mut t_base = f64::INFINITY;
    for rep in 0..3 {
        t_base = t_base.min(drive_windowed(
            &streaming_rt(workers, high, low),
            n_base,
            7 + rep,
        ));
    }
    let rt_large = streaming_rt(workers, high, low);
    let t_large = drive_windowed(&rt_large, n_large, 7);
    let base_tps = n_base as f64 / t_base;
    let large_tps = n_large as f64 / t_large;
    let ratio = large_tps / base_tps;
    println!(
        "throughput: 10k {base_tps:.0} tasks/s | {n_large} tasks {large_tps:.0} tasks/s | ratio {ratio:.2}"
    );

    // -- residency: the large DAG must not live in memory -------------
    let stats = rt_large.table_stats();
    // Live slots: the in-flight window (≤ high watermark), plus
    // completed producers pinned by in-flight readers (each in-flight
    // task can hold at most one older producer live here — ≤ high
    // again), plus the driver's retention ring and scheduler slack.
    let task_bound = (2 * high + WINDOW + 64 * workers) as u64;
    let inflight_bound = (high + 16) as u64;
    println!(
        "residency: {} tasks allocated, peak live {} (bound {task_bound}) | data peak live {} | peak in-flight {} (bound {inflight_bound})",
        stats.tasks.allocated, stats.tasks.peak_live, stats.data.peak_live, stats.peak_in_flight
    );

    // -- fairness: adversarial 10:1 mix, equal weights ----------------
    // Tenant A floods its entire backlog (10x tenant B's task count)
    // before B submits a single task — the adversarial case: by the
    // time B shows up the injector already holds thousands of A's
    // tasks. From the moment B's backlog is queued, deficit-round-
    // robin dispatch must interleave 1:1 (equal weights): while B
    // drains, A completes one task per B task, not a flood's worth.
    // The experiment runs on a flat runtime — fairness is orthogonal
    // to streaming, and pre-queuing the full flood is exactly what
    // backpressure would forbid.
    let (nb, spin_iters) = if small {
        (3_000u64, 50_000u64)
    } else {
        (10_000, 50_000)
    };
    let na = 10 * nb;
    let frt = Runtime::with_config(RuntimeConfig {
        mode: ExecMode::Threads(workers),
        ..RuntimeConfig::default()
    });
    let tenant_a = frt.tenant("bulk", 1);
    let tenant_b = frt.tenant("interactive", 1);
    let fair_start = Instant::now();
    for _ in 0..na {
        let h = tenant_a.task("spin").run0(move || spin(spin_iters));
        frt.release(h);
    }
    for _ in 0..nb {
        let h = tenant_b.task("spin").run0(move || spin(spin_iters));
        frt.release(h);
    }
    // Contention baseline: B's backlog is fully queued, A's flood is
    // ahead by whatever executed during submission.
    let ts0 = frt.tenant_stats();
    let (a0, b0) = (ts0[0].completed, ts0[1].completed);
    let remaining_b = nb - b0;
    // Watch for the moment B's backlog drains; everything A completed
    // since the baseline was won through the DRR dispatcher under
    // contention with B.
    let a_at_drain = loop {
        let ts = frt.tenant_stats();
        if ts[1].completed >= nb {
            break ts[0].completed;
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    };
    let t_b_done = fair_start.elapsed().as_secs_f64();
    frt.barrier();
    let t_fair = fair_start.elapsed().as_secs_f64();
    let ts = frt.tenant_stats();
    let a_delta = a_at_drain - a0;
    let share_err = (a_delta as f64 - remaining_b as f64).abs() / remaining_b as f64;
    let a_tps = ts[0].completed as f64 / t_fair;
    let b_tps = nb as f64 / t_b_done;
    println!(
        "fairness ({na}:{nb} tasks, weights 1:1): while B drained {remaining_b}, A completed {a_delta} (err {:.1}%)",
        share_err * 100.0
    );
    println!(
        "fairness throughput: A {a_tps:.0} tasks/s over full run | B {b_tps:.0} tasks/s to drain | queue-wait p95 A {:.1}ms B {:.1}ms",
        ts[0].queue_wait.quantile(0.95) as f64 * 1e-6,
        ts[1].queue_wait.quantile(0.95) as f64 * 1e-6,
    );

    // -- artifact: merge the "scale" section into out/perf.json -------
    let section = Value::Object(vec![
        ("setting".into(), Value::String(scale)),
        ("workers".into(), Value::from(workers)),
        ("watermark_high".into(), Value::from(high)),
        ("watermark_low".into(), Value::from(low)),
        ("window".into(), Value::from(WINDOW)),
        ("base_tasks".into(), Value::from(n_base)),
        ("large_tasks".into(), Value::from(n_large)),
        ("base_tasks_per_s".into(), Value::Number(base_tps)),
        ("large_tasks_per_s".into(), Value::Number(large_tps)),
        ("ratio_large".into(), Value::Number(ratio)),
        ("tasks_allocated".into(), Value::from(stats.tasks.allocated)),
        ("tasks_peak_live".into(), Value::from(stats.tasks.peak_live)),
        ("tasks_peak_live_bound".into(), Value::from(task_bound)),
        ("data_peak_live".into(), Value::from(stats.data.peak_live)),
        ("peak_in_flight".into(), Value::from(stats.peak_in_flight)),
        ("peak_in_flight_bound".into(), Value::from(inflight_bound)),
        ("fair_tasks_a".into(), Value::from(na)),
        ("fair_tasks_b".into(), Value::from(nb)),
        ("fair_b_drained".into(), Value::from(remaining_b)),
        ("fair_a_done_while_b_drained".into(), Value::from(a_delta)),
        ("fair_share_err".into(), Value::Number(share_err)),
        ("fair_a_tasks_per_s".into(), Value::Number(a_tps)),
        ("fair_b_tasks_per_s".into(), Value::Number(b_tps)),
    ]);
    let merged = match std::fs::read_to_string("out/perf.json")
        .ok()
        .and_then(|s| Value::parse(&s).ok())
    {
        Some(Value::Object(mut fields)) => {
            // `perf` writes its bench-scale setting under "scale"; this
            // section replaces it (the setting survives inside).
            fields.retain(|(k, _)| k != "scale");
            fields.push(("scale".into(), section));
            Value::Object(fields)
        }
        _ => Value::Object(vec![("scale".into(), section)]),
    };
    write_artifact("out/perf.json", &merged.pretty()).expect("write out/perf.json");

    // -- gate (--check) -----------------------------------------------
    if args.has("check") {
        let mut ok = true;
        if ratio < 0.5 || !ratio.is_finite() {
            eprintln!("check FAILED: scale.ratio_large = {ratio:.3} < 0.5");
            ok = false;
        }
        if stats.tasks.peak_live > task_bound {
            eprintln!(
                "check FAILED: scale.tasks_peak_live = {} > {task_bound} (resident set not bounded)",
                stats.tasks.peak_live
            );
            ok = false;
        }
        if stats.peak_in_flight > inflight_bound {
            eprintln!(
                "check FAILED: scale.peak_in_flight = {} > {inflight_bound} (backpressure breached)",
                stats.peak_in_flight
            );
            ok = false;
        }
        if share_err > 0.15 || !share_err.is_finite() {
            eprintln!("check FAILED: scale.fair_share_err = {share_err:.3} > 0.15");
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
        println!(
            "check: {n_large}-task rate {:.2}x the 10k rate, peak live {} <= {task_bound}, fairness within {:.1}%",
            ratio, stats.tasks.peak_live, share_err * 100.0
        );
    }
}
