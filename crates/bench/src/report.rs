//! Result formatting and artifact output for the harness binaries.

use dislib::ConfusionMatrix;
use std::io::Write as _;
use std::path::Path;

/// A `(label, value)` series such as "cores vs seconds".
pub type Series = Vec<(String, f64)>;

/// Prints a two-column table with a title.
pub fn print_series(title: &str, xlabel: &str, ylabel: &str, series: &Series) {
    println!("\n== {title} ==");
    println!("{xlabel:>12}  {ylabel:>14}");
    for (x, y) in series {
        println!("{x:>12}  {y:>14.2}");
    }
}

/// Prints a confusion matrix in the paper's Table I format, with the
/// paper's reported values alongside for comparison.
pub fn print_confusion(
    title: &str,
    cm: &ConfusionMatrix,
    paper_cells: Option<[[f64; 2]; 2]>,
    paper_accuracy: Option<f64>,
) {
    println!("\n== {title} ==");
    let n = cm.normalized();
    println!("                 Pred AF   Pred N");
    println!("  true AF        {:.3}     {:.3}", n[0][0], n[0][1]);
    println!("  true Normal    {:.3}     {:.3}", n[1][0], n[1][1]);
    println!(
        "  accuracy {:.1}%  precision {:.3}  recall {:.3}  F1 {:.3}",
        cm.accuracy() * 100.0,
        cm.precision(),
        cm.recall(),
        cm.f1()
    );
    if let Some(p) = paper_cells {
        println!(
            "  paper:         {:.3}     {:.3}\n                 {:.3}     {:.3}",
            p[0][0], p[0][1], p[1][0], p[1][1]
        );
    }
    if let Some(acc) = paper_accuracy {
        println!("  paper accuracy {:.1}%", acc * 100.0);
    }
}

/// Writes a string artifact under `out/`, creating the directory.
pub fn write_artifact(path: &str, contents: &str) -> std::io::Result<()> {
    let p = Path::new(path);
    if let Some(dir) = p.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(p)?;
    f.write_all(contents.as_bytes())?;
    println!("wrote {path}");
    Ok(())
}

/// Parses `--key value` style flags from `std::env::args`.
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn capture() -> Self {
        Self {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Value of `--name <value>`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        let flag = format!("--{name}");
        self.raw
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.raw.get(i + 1))
            .map(String::as_str)
    }

    /// Presence of a boolean flag `--name`.
    pub fn has(&self, name: &str) -> bool {
        let flag = format!("--{name}");
        self.raw.iter().any(|a| a == &flag)
    }

    /// Parsed value with default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_roundtrip() {
        let path = "out/test_artifact.txt";
        write_artifact(path, "hello").unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), "hello");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn confusion_printing_does_not_panic() {
        let cm = ConfusionMatrix {
            tp: 10,
            fp: 2,
            fn_: 3,
            tn: 15,
        };
        print_confusion(
            "demo",
            &cm,
            Some([[0.379, 0.125], [0.125, 0.369]]),
            Some(0.749),
        );
    }
}
