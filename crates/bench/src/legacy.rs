//! The seed scheduler, preserved as a benchmark baseline.
//!
//! This is a faithful port of the workspace's original global-lock
//! runtime (`crates/core/src/runtime.rs` at the seed commit), kept so
//! `--bin perf` can measure the new scheduler against the design it
//! replaced on identical DAGs. The hot-path characteristics of the
//! seed are reproduced exactly:
//!
//! * one `Mutex<State>` around **hash-map** task/data tables
//!   (`values`, `producer`, `done`, `failed`, `remaining`,
//!   `dependents`, `pending`) — every submission and completion hashes
//!   several keys under the global lock;
//! * dispatch through a single shared channel all workers contend on,
//!   with a `Sender` clone and an `Arc<Inner>` clone per message;
//! * completion wakes **every** sleeper (`notify_all`), whether or not
//!   it can make progress;
//! * full per-task bookkeeping: a boxed type-erased body, wall-clock
//!   timing around a `catch_unwind`, a [`TaskRecord`] with
//!   input/output byte sizes looked up from the value map.
//!
//! The only deliberate deviations: `std::sync` primitives replace
//! `parking_lot`/`crossbeam` (the workspace no longer ships those), a
//! worklist replaces inline recursion so deep chains cannot overflow,
//! and workers are joined on drop so benchmark processes stay tidy —
//! none of which touch the measured per-task path.

use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;
use taskrt::{DataId, TaskId, TaskRecord};

/// Type-erased shared value (the seed's `AnyArc`).
pub type AnyArc = Arc<dyn Any + Send + Sync>;

/// Type-erased task body, as in the seed (minus the nesting context,
/// which no benchmark DAG uses).
pub type LegacyTaskFn = Box<dyn FnOnce(&[AnyArc]) -> Vec<(AnyArc, usize)> + Send>;

enum Slot {
    Pending,
    Ready(AnyArc, usize),
}

struct PendingJob {
    f: LegacyTaskFn,
    inputs: Vec<DataId>,
    outputs: Vec<DataId>,
}

struct State {
    next_data: u64,
    next_task: u64,
    values: HashMap<DataId, Slot>,
    producer: HashMap<DataId, TaskId>,
    done: HashSet<TaskId>,
    failed: HashMap<TaskId, String>,
    remaining: HashMap<TaskId, usize>,
    dependents: HashMap<TaskId, Vec<TaskId>>,
    pending: HashMap<TaskId, PendingJob>,
    records: Vec<TaskRecord>,
}

struct Inner {
    state: Mutex<State>,
    cv: Condvar,
    sender: Mutex<Option<Sender<WorkerMsg>>>,
}

struct WorkerMsg {
    task: TaskId,
    job: PendingJob,
    inner: Arc<Inner>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The seed's global-lock runtime.
pub struct LegacyRuntime {
    inner: Arc<Inner>,
    inline: bool,
    workers: Vec<JoinHandle<()>>,
}

impl LegacyRuntime {
    /// Builds a runtime with `workers` worker threads (0 = inline).
    pub fn new(workers: usize) -> Self {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                next_data: 0,
                next_task: 0,
                values: HashMap::new(),
                producer: HashMap::new(),
                done: HashSet::new(),
                failed: HashMap::new(),
                remaining: HashMap::new(),
                dependents: HashMap::new(),
                pending: HashMap::new(),
                records: Vec::new(),
            }),
            cv: Condvar::new(),
            sender: Mutex::new(None),
        });
        let mut handles = Vec::new();
        if workers > 0 {
            let (tx, rx): (Sender<WorkerMsg>, Receiver<WorkerMsg>) = channel();
            // std's Receiver is single-consumer; share it behind a lock
            // (the seed used an MPMC channel — all workers contended on
            // one dispatch queue either way).
            let rx = Arc::new(Mutex::new(rx));
            for _ in 0..workers {
                let rx = rx.clone();
                handles.push(std::thread::spawn(move || loop {
                    let msg = lock(&rx).recv();
                    match msg {
                        Ok(msg) => execute(msg),
                        Err(_) => return,
                    }
                }));
            }
            *lock(&inner.sender) = Some(tx);
        }
        LegacyRuntime {
            inner,
            inline: workers == 0,
            workers: handles,
        }
    }

    /// The seed's `submit_raw`: wires last-writer dependencies, records
    /// a full [`TaskRecord`], and dispatches if already ready.
    pub fn submit_raw(
        &self,
        name: String,
        inputs: Vec<DataId>,
        n_outputs: usize,
        f: LegacyTaskFn,
    ) -> Vec<DataId> {
        let (tid, outputs, job_now) = {
            let mut st = lock(&self.inner.state);
            let tid = TaskId(st.next_task);
            st.next_task += 1;

            let mut outputs = Vec::with_capacity(n_outputs);
            for _ in 0..n_outputs {
                let id = DataId(st.next_data);
                st.next_data += 1;
                st.values.insert(id, Slot::Pending);
                st.producer.insert(id, tid);
                outputs.push(id);
            }

            let mut deps: Vec<TaskId> = inputs
                .iter()
                .filter_map(|d| st.producer.get(d).copied())
                .collect();
            deps.sort();
            deps.dedup();
            deps.retain(|&d| d != tid);

            let seq = st.records.len() as u64;
            let input_bytes: Vec<(DataId, usize)> = inputs
                .iter()
                .map(|d| {
                    let b = match st.values.get(d) {
                        Some(Slot::Ready(_, b)) => *b,
                        _ => 0,
                    };
                    (*d, b)
                })
                .collect();
            st.records.push(TaskRecord {
                id: tid,
                name,
                deps: deps.clone(),
                duration_s: 0.0,
                inputs: input_bytes,
                outputs: outputs.iter().map(|&d| (d, 0)).collect(),
                cores: 0,
                gpus: 0,
                seq,
                start_s: 0.0,
                worker: -1,
                child: None,
                attempts: vec![],
                tenant: 0,
            });

            let unfinished = deps.iter().filter(|d| !st.done.contains(d)).count();
            let job = PendingJob {
                f,
                inputs,
                outputs: outputs.clone(),
            };
            if unfinished == 0 {
                (tid, outputs, Some(job))
            } else {
                st.remaining.insert(tid, unfinished);
                for d in deps {
                    if !st.done.contains(&d) {
                        st.dependents.entry(d).or_default().push(tid);
                    }
                }
                st.pending.insert(tid, job);
                (tid, outputs, None)
            }
        };
        if let Some(job) = job_now {
            self.dispatch(tid, job);
        }
        outputs
    }

    fn dispatch(&self, task: TaskId, job: PendingJob) {
        if self.inline {
            execute(WorkerMsg {
                task,
                job,
                inner: self.inner.clone(),
            });
        } else {
            let sender = lock(&self.inner.sender).clone().expect("pool sender");
            sender
                .send(WorkerMsg {
                    task,
                    job,
                    inner: self.inner.clone(),
                })
                .expect("worker pool alive");
        }
    }

    /// Blocks until every submitted task has completed (the seed's
    /// barrier loop: broadcast wakeups, full rescan per wakeup).
    pub fn barrier(&self) {
        let mut st = lock(&self.inner.state);
        loop {
            if let Some((t, msg)) = st.failed.iter().next() {
                panic!("legacy task {t:?} failed: {msg}");
            }
            if st.done.len() as u64 + st.failed.len() as u64 == st.next_task {
                return;
            }
            st = self
                .inner
                .cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Tasks submitted so far.
    pub fn task_count(&self) -> usize {
        lock(&self.inner.state).records.len()
    }
}

impl Drop for LegacyRuntime {
    fn drop(&mut self) {
        lock(&self.inner.sender).take(); // close the channel
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// The seed's `Inner::execute`: resolve inputs, time the body, store
/// outputs, release dependents, broadcast. A worklist replaces the
/// seed's recursion so deep inline chains cannot overflow the stack.
fn execute(msg: WorkerMsg) {
    let mut work = vec![msg];
    while let Some(WorkerMsg { task, job, inner }) = work.pop() {
        let PendingJob { f, inputs, outputs } = job;

        let resolved: Vec<AnyArc> = {
            let st = lock(&inner.state);
            inputs
                .iter()
                .map(|d| match st.values.get(d) {
                    Some(Slot::Ready(v, _)) => v.clone(),
                    _ => unreachable!("input {d:?} not ready for task {task:?}"),
                })
                .collect()
        };

        let start = Instant::now();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&resolved)));
        let duration = start.elapsed().as_secs_f64();

        let mut newly_ready: Vec<(TaskId, PendingJob)> = Vec::new();
        {
            let mut st = lock(&inner.state);
            match result {
                Ok(outs) => {
                    assert_eq!(outs.len(), outputs.len(), "wrong number of outputs");
                    let idx = task.0 as usize;
                    let in_sizes: Vec<(DataId, usize)> = inputs
                        .iter()
                        .map(|d| {
                            let b = match st.values.get(d) {
                                Some(Slot::Ready(_, b)) => *b,
                                _ => 0,
                            };
                            (*d, b)
                        })
                        .collect();
                    {
                        let rec = &mut st.records[idx];
                        rec.duration_s = duration;
                        rec.inputs = in_sizes;
                        rec.outputs = outputs
                            .iter()
                            .zip(&outs)
                            .map(|(&d, (_, b))| (d, *b))
                            .collect();
                    }
                    for (&d, (v, b)) in outputs.iter().zip(outs) {
                        st.values.insert(d, Slot::Ready(v, b));
                    }
                    st.done.insert(task);
                }
                Err(e) => {
                    let msg = e
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| e.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "task panicked".to_string());
                    let mut frontier = vec![task];
                    while let Some(t) = frontier.pop() {
                        st.failed.insert(t, msg.clone());
                        st.pending.remove(&t);
                        st.remaining.remove(&t);
                        if let Some(deps) = st.dependents.remove(&t) {
                            frontier.extend(deps);
                        }
                    }
                }
            }

            if st.done.contains(&task) {
                if let Some(deps) = st.dependents.remove(&task) {
                    for dep in deps {
                        let rem = st.remaining.get_mut(&dep).expect("dependent counted");
                        *rem -= 1;
                        if *rem == 0 {
                            st.remaining.remove(&dep);
                            let job = st.pending.remove(&dep).expect("pending job present");
                            newly_ready.push((dep, job));
                        }
                    }
                }
            }
        }
        inner.cv.notify_all();
        for (dep, job) in newly_ready {
            let sender = lock(&inner.sender).clone();
            match sender {
                Some(tx) => {
                    let _ = tx.send(WorkerMsg {
                        task: dep,
                        job,
                        inner: inner.clone(),
                    });
                }
                None => work.push(WorkerMsg {
                    task: dep,
                    job,
                    inner: inner.clone(),
                }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop() -> LegacyTaskFn {
        Box::new(|_ins| vec![(Arc::new(0u8) as AnyArc, 1)])
    }

    #[test]
    fn legacy_inline_runs_dag() {
        let rt = LegacyRuntime::new(0);
        let a = rt.submit_raw("a".into(), vec![], 1, noop());
        let b = rt.submit_raw("b".into(), vec![a[0]], 1, noop());
        let _c = rt.submit_raw("c".into(), vec![a[0], b[0]], 1, noop());
        rt.barrier();
        assert_eq!(rt.task_count(), 3);
    }

    #[test]
    fn legacy_inline_deep_chain_does_not_overflow() {
        let rt = LegacyRuntime::new(0);
        let mut prev = rt.submit_raw("t".into(), vec![], 1, noop());
        for _ in 0..50_000 {
            prev = rt.submit_raw("t".into(), vec![prev[0]], 1, noop());
        }
        rt.barrier();
    }

    #[test]
    fn legacy_threaded_runs_dag() {
        let rt = LegacyRuntime::new(4);
        let mut outs: Vec<DataId> = Vec::new();
        for i in 0..200usize {
            let deps: Vec<DataId> = outs.iter().rev().take(2).copied().collect();
            outs.push(rt.submit_raw(format!("t{}", i % 3), deps, 1, noop())[0]);
        }
        rt.barrier();
        assert_eq!(rt.task_count(), 200);
    }
}
