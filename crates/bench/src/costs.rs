//! Analytic duration scaling: lifting measured small-scale traces to the
//! paper's workload size.
//!
//! The shape of every scalability figure is produced by the *task graph*
//! (recorded at executable scale) plus the *relative task durations*.
//! To report paper-scale seconds, each task kind's measured duration is
//! multiplied by the work ratio between the paper's per-task workload
//! and ours, using standard complexity models:
//!
//! | kind | work model | paper / small workload |
//! |---|---|---|
//! | `csvm_fit`/`csvm_merge` | SMO ≈ `m^2 · d` | m: 500-row blocks vs ours; d: 3269 vs ours |
//! | `knn_query` | brute force ≈ `m · q · d` | 250-row blocks |
//! | `rf_build_tree` | CART ≈ `m · log m · sqrt(d) · depth` | full 8246-sample folds |
//! | `cnn_train` | conv flops ∝ `samples · features` | plus multi-GPU sync overhead |
//! | `ds_*`, `scaler_*`, `pca_*` | linear in block elements | |
//!
//! Data sizes are scaled with the same element ratios so the simulator's
//! transfer model also operates at paper scale.

use std::collections::BTreeMap;
use std::sync::Arc;
use taskrt::sim::DurationFn;
use taskrt::TaskRecord;

/// Multiplicative per-kind duration scaling; kinds not listed fall back
/// to `default`.
#[derive(Debug, Clone)]
pub struct ScaleModel {
    /// Per-kind multipliers.
    pub factors: BTreeMap<String, f64>,
    /// Per-kind **absolute** durations in seconds; takes precedence over
    /// `factors`. Used when the paper-scale per-task cost is known
    /// structurally (e.g. "SMO on one 500×3269 block") and the measured
    /// small-scale duration would distort relative costs.
    pub fixed: BTreeMap<String, f64>,
    /// Fallback multiplier.
    pub default: f64,
    /// Extra seconds added per `cnn_train` task per additional GPU
    /// (models intra-node gradient exchange; the paper: "the
    /// communication between the GPUs is causing unnecessary overhead").
    pub gpu_comm_s: f64,
}

impl ScaleModel {
    /// Identity scaling.
    pub fn identity() -> Self {
        Self {
            factors: BTreeMap::new(),
            fixed: BTreeMap::new(),
            default: 1.0,
            gpu_comm_s: 0.0,
        }
    }

    /// Sets an absolute per-kind duration (seconds).
    pub fn with_fixed(mut self, kind: &str, seconds: f64) -> Self {
        self.fixed.insert(kind.to_string(), seconds);
        self
    }

    /// Builds the paper-scale model from the small/paper workload
    /// parameters.
    ///
    /// * `sample_ratio` — paper samples per task / small samples per task
    /// * `feature_ratio` — paper features / small features
    pub fn paper_scale(sample_ratio: f64, feature_ratio: f64) -> Self {
        let mut factors = BTreeMap::new();
        let linear = sample_ratio * feature_ratio;
        // SMO on a block: quadratic in rows, linear in features.
        factors.insert(
            "csvm_fit".into(),
            sample_ratio * sample_ratio * feature_ratio,
        );
        factors.insert(
            "csvm_merge".into(),
            sample_ratio * sample_ratio * feature_ratio,
        );
        factors.insert(
            "csvm_refit".into(),
            sample_ratio * sample_ratio * feature_ratio,
        );
        factors.insert(
            "csvm_final".into(),
            sample_ratio * sample_ratio * feature_ratio,
        );
        factors.insert("csvm_predict".into(), linear);
        factors.insert("csvm_score".into(), linear);
        // Brute-force KNN: rows x queries x features.
        factors.insert(
            "knn_query".into(),
            sample_ratio * sample_ratio * feature_ratio,
        );
        factors.insert("knn_fit".into(), linear);
        factors.insert("knn_merge".into(), sample_ratio);
        factors.insert("knn_vote".into(), sample_ratio);
        // CART: samples log samples x sqrt(features).
        let rf = sample_ratio * (1.0 + sample_ratio.ln().max(0.0)) * feature_ratio.sqrt();
        factors.insert("rf_build_tree".into(), rf);
        factors.insert("rf_top".into(), rf);
        factors.insert("rf_subtree".into(), rf);
        factors.insert("rf_join".into(), sample_ratio);
        factors.insert("rf_predict".into(), linear);
        // CNN epoch: linear in samples x features.
        factors.insert("cnn_train".into(), linear);
        factors.insert("cnn_merge".into(), feature_ratio);
        factors.insert("cnn_eval".into(), linear);
        factors.insert("cnn_fold".into(), linear);
        // Blocked data ops: linear in elements.
        for kind in [
            "ds_load",
            "ds_merge_band",
            "ds_gather",
            "ds_colsum",
            "ds_colsum_reduce",
            "ds_center",
            "ds_scale",
            "ds_gram",
            "ds_gram_reduce",
            "ds_matmul",
            "scaler_sq",
            "scaler_mean",
            "scaler_std",
            "pca_mean",
            "pca_cov_scale",
        ] {
            factors.insert(kind.into(), linear);
        }
        // Eigendecomposition: cubic in features.
        factors.insert("pca_eigh".into(), feature_ratio.powi(3));
        Self {
            factors,
            fixed: BTreeMap::new(),
            default: linear,
            gpu_comm_s: 0.0,
        }
    }

    /// Adds the per-GPU communication overhead used by the Fig. 12
    /// experiment.
    pub fn with_gpu_comm(mut self, seconds_per_extra_gpu: f64) -> Self {
        self.gpu_comm_s = seconds_per_extra_gpu;
        self
    }

    /// Converts the model to the simulator's [`DurationFn`] hook.
    pub fn duration_fn(&self) -> DurationFn {
        let model = self.clone();
        Arc::new(move |r: &TaskRecord| {
            if r.is_marker() {
                return None;
            }
            // Nested tasks must be costed by recursively simulating
            // their child trace (with this same model applied inside);
            // returning a value here would bypass that.
            if r.child.is_some() {
                return None;
            }
            let mut d = match model.fixed.get(&r.name) {
                Some(&abs) => abs,
                None => {
                    let factor = model.factors.get(&r.name).copied().unwrap_or(model.default);
                    r.duration_s * factor
                }
            };
            if r.name == "cnn_train" && r.gpus > 1 {
                // Multi-GPU tasks split the work but pay gradient
                // synchronization per extra GPU.
                d = d / r.gpus as f64 + model.gpu_comm_s * (r.gpus - 1) as f64;
            }
            Some(d)
        })
    }

    /// A data-size multiplier matched to the duration scaling, for
    /// transfer modeling at paper scale (applied by the caller when it
    /// builds the cluster spec: we keep byte counts and instead divide
    /// bandwidth, which is equivalent and avoids rewriting traces).
    pub fn bandwidth_divisor(&self, element_ratio: f64) -> f64 {
        element_ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskrt::{DataId, TaskId};

    fn rec(name: &str, dur: f64, gpus: u32) -> TaskRecord {
        TaskRecord {
            id: TaskId(0),
            name: name.into(),
            deps: vec![],
            duration_s: dur,
            inputs: vec![(DataId(0), 100)],
            outputs: vec![(DataId(1), 100)],
            cores: 1,
            gpus,
            seq: 0,
            start_s: 0.0,
            worker: -1,
            child: None,
            attempts: vec![],
            tenant: 0,
        }
    }

    #[test]
    fn identity_keeps_measured_durations() {
        let f = ScaleModel::identity().duration_fn();
        assert_eq!(f(&rec("csvm_fit", 2.5, 0)), Some(2.5));
    }

    #[test]
    fn quadratic_kinds_scale_faster_than_linear() {
        let m = ScaleModel::paper_scale(8.0, 20.0);
        let f = m.duration_fn();
        let svm = f(&rec("csvm_fit", 1.0, 0)).unwrap();
        let load = f(&rec("ds_load", 1.0, 0)).unwrap();
        assert!(svm > load, "svm {svm} vs load {load}");
        assert_eq!(svm, 8.0 * 8.0 * 20.0);
        assert_eq!(load, 8.0 * 20.0);
    }

    #[test]
    fn markers_stay_zero() {
        let m = ScaleModel::paper_scale(8.0, 20.0);
        let f = m.duration_fn();
        let mut marker = rec(taskrt::trace::SYNC_TASK, 0.0, 0);
        marker.cores = 0;
        assert_eq!(f(&marker), None);
    }

    #[test]
    fn gpu_comm_penalizes_multi_gpu_tasks() {
        let m = ScaleModel::identity().with_gpu_comm(3.0);
        let f = m.duration_fn();
        let single = f(&rec("cnn_train", 8.0, 1)).unwrap();
        let quad = f(&rec("cnn_train", 8.0, 4)).unwrap();
        assert_eq!(single, 8.0);
        assert_eq!(quad, 8.0 / 4.0 + 3.0 * 3.0);
        // With this overhead, 4 GPUs is slower than 1 for small work —
        // the paper's observation.
        assert!(quad > single);
    }
}
