//! # bench — experiment harness reproducing the paper's evaluation
//!
//! Binaries (run from the repo root; all accept `--help`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table I a–d: per-algorithm confusion matrices + accuracy |
//! | `fig11` | Fig. 11 a–c: training-time-vs-cores curves on the simulated MareNostrum 4 |
//! | `fig12` | Fig. 12: CNN training-time bars on the simulated CTE-Power |
//! | `graphs` | Figs. 4, 6, 8, 9, 10: execution graphs as Graphviz DOT |
//! | `pca_cost` | §IV-B: constant PCA cost across algorithms |
//! | `ablate` | ablations: block size, scheduler policy, `distr_depth`, nesting, augmentation |
//! | `perf` | hot-path throughput: scheduler (new vs [`legacy`]), DES replay, blocked GEMM — writes `out/perf.json` |
//! | `dist` | multi-process PCA over `taskrt::dist`: bit-identity vs the inline oracle, DES divergence gate, chaos SIGKILL arm — writes `out/dist.json` |
//!
//! Library modules: [`pipeline`] (the end-to-end AF workflow at `small`
//! scale), [`costs`] (the analytic duration scaling that lifts measured
//! small-scale traces to paper-scale), [`report`] (table/series
//! formatting and artifact output).

pub mod costs;
pub mod legacy;
pub mod pipeline;
pub mod report;
